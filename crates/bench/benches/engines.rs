//! Criterion comparison of the two storage engines on the same SC query —
//! the row-vs-column gap behind Fig. 5 and Fig. 7 — plus the
//! positional-vs-tuple executor comparison backing the late-materialization
//! work (the `positional_vs_tuple` group) and the worker-pool scaling run
//! backing the morsel-partitioned parallel executor (the
//! `positional_threads` group).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use blend::{Blend, Plan, Seeker};
use blend_bench::synthetic_rows;
use blend_lake::{web, workloads, WebLakeConfig};
use blend_parallel::ParallelCtx;
use blend_sql::{ExecPath, SqlEngine};
use blend_storage::{build_engine, EngineKind};

fn bench_engines(c: &mut Criterion) {
    let lake = web::generate(&WebLakeConfig::gittables_like(0.05));
    let row = Blend::from_lake(&lake, EngineKind::Row);
    let col = Blend::from_lake(&lake, EngineKind::Column);
    let query = workloads::sc_queries(&lake, &[100], 1, 5)
        .remove(0)
        .1
        .remove(0);
    let mut plan = Plan::new();
    plan.add_seeker("s", Seeker::sc(query), 10).unwrap();

    let mut group = c.benchmark_group("engines");
    group.sample_size(20);
    group.bench_function("sc_row_store", |b| b.iter(|| row.execute(&plan).unwrap()));
    group.bench_function("sc_column_store", |b| {
        b.iter(|| col.execute(&plan).unwrap())
    });
    group.finish();
}

/// SC-seeker SQL over a 60-value IN list (the paper's largest query size).
fn sc_shape_sql() -> String {
    let vals: Vec<String> = (0..60).map(|i| format!("'v{}'", i * 13 % 997)).collect();
    format!(
        "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
         WHERE CellValue IN ({}) GROUP BY TableId, ColumnId \
         ORDER BY score DESC LIMIT 48",
        vals.join(",")
    )
}

/// Positional vs tuple executor on the SC seeker shape, 150k fact rows,
/// both storage engines. Also prints the measured speedup explicitly (the
/// late-materialization work targets ≥2× here).
fn bench_positional_vs_tuple(c: &mut Criterion) {
    let rows = synthetic_rows(120, 250, 5); // 150_000 fact rows
    let sql = sc_shape_sql();

    let mut group = c.benchmark_group("positional_vs_tuple");
    group.sample_size(30);
    for kind in [EngineKind::Row, EngineKind::Column] {
        let engine = SqlEngine::with_alltables(build_engine(kind, rows.clone()));
        let label = kind.label().to_lowercase();

        // Sanity: the two paths agree before we time them.
        let (a, ra) = engine
            .execute_with_report_path(&sql, ExecPath::Auto)
            .unwrap();
        let (b, _) = engine
            .execute_with_report_path(&sql, ExecPath::TupleOnly)
            .unwrap();
        assert_eq!(ra.path, "positional");
        assert_eq!(a, b, "executor paths disagree on the SC shape");

        group.bench_function(format!("sc_{label}_tuple"), |bch| {
            bch.iter(|| {
                engine
                    .execute_with_report_path(&sql, ExecPath::TupleOnly)
                    .unwrap()
            })
        });
        group.bench_function(format!("sc_{label}_positional"), |bch| {
            bch.iter(|| {
                engine
                    .execute_with_report_path(&sql, ExecPath::Auto)
                    .unwrap()
            })
        });

        let time = |path: ExecPath| {
            let iters = 40;
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(engine.execute_with_report_path(&sql, path).unwrap());
            }
            start.elapsed() / iters
        };
        let tuple = time(ExecPath::TupleOnly);
        let positional = time(ExecPath::Auto);
        println!(
            "  -> {label}: tuple {tuple:?}, positional {positional:?}, speedup {:.2}x",
            tuple.as_secs_f64() / positional.as_secs_f64()
        );
    }
    group.finish();
}

/// Thread scaling of the parallel positional executor on the SC shape at
/// 150k fact rows, both storage engines (the `positional_threads` run).
/// Verifies byte-identical results against the single-threaded run, then
/// reports per-phase partition counts, per-worker busy times, and the
/// speedup per thread count. One manual timing loop per configuration —
/// its mean both feeds the printed speedup and is the reported number, so
/// the heavy query is not measured twice.
fn bench_thread_scaling(_c: &mut Criterion) {
    let rows = synthetic_rows(120, 250, 5); // 150_000 fact rows
    let sql = sc_shape_sql();

    println!("== thread scaling `positional_threads` (SC shape, 150k rows)");
    for kind in [EngineKind::Row, EngineKind::Column] {
        let fact = build_engine(kind, rows.clone());
        let label = kind.label().to_lowercase();

        let engine_with = |threads: usize| {
            SqlEngine::with_alltables(fact.clone())
                .with_parallel(Arc::new(ParallelCtx::new(threads)))
        };
        let (baseline, rep1) = engine_with(1)
            .execute_with_report_path(&sql, ExecPath::Auto)
            .unwrap();
        assert_eq!(rep1.path, "positional");

        let mut base_time = None;
        for threads in [1usize, 2, 4, 8] {
            let engine = engine_with(threads);

            // Parity before timing: every thread count must reproduce the
            // single-threaded result byte-for-byte.
            let (rs, report) = engine
                .execute_with_report_path(&sql, ExecPath::Auto)
                .unwrap();
            assert_eq!(rs, baseline, "{label}/{threads}t diverged from 1t");

            let iters = 30;
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(
                    engine
                        .execute_with_report_path(&sql, ExecPath::Auto)
                        .unwrap(),
                );
            }
            let elapsed = start.elapsed() / iters;
            let speedup = base_time.get_or_insert(elapsed).as_secs_f64() / elapsed.as_secs_f64();
            println!("  sc_{label}_{threads}t: {elapsed:?}/iter ({speedup:.2}x vs 1t)");
            for phase in &report.parallel {
                let busy: Vec<String> = phase
                    .worker_nanos
                    .iter()
                    .map(|n| format!("{:.2}ms", *n as f64 / 1e6))
                    .collect();
                println!(
                    "       {}: {} partitions, {} workers granted, per-worker busy [{}]",
                    phase.phase,
                    phase.partitions,
                    phase.granted,
                    busy.join(", ")
                );
            }
        }
    }
}

criterion_group!(
    benches,
    bench_engines,
    bench_positional_vs_tuple,
    bench_thread_scaling
);
criterion_main!(benches);

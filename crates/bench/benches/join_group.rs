//! `join_group` Criterion group: the flat join/group operators
//! (`blend_sql::hashtable`) vs. the retained map-based oracles, on the
//! seeker join/aggregation shapes at 150k fact rows, both storage engines.
//!
//! Two shapes, mirroring the two phases the flat operators replaced:
//!
//! * **SC join+group** — GROUP BY (TableId, ColumnId) with `COUNT(*)` +
//!   `COUNT(DISTINCT CellValue)` over the whole 150k-row position space
//!   (the SC seeker's aggregation after a broad scan). Map baseline: an
//!   `FxHashMap` group index plus one `FxHashSet` per group. Flat: a
//!   `GroupIndex` of dense ids, a counting pass, and per-group sort-unique
//!   over the gathered code column.
//! * **MC join** — the seeker self-join on packed `(TableId, RowId)` keys
//!   over two scanned position lists. Map baseline:
//!   `FxHashMap<u64, Vec<u32>>` entry/push build + per-row probe. Flat:
//!   the CSR `JoinTable` (two counting passes) + bucket-run probes.
//!
//! A third, engine-independent **XL probe** shape runs the blocked probe
//! kernel at cache-busting scale (4M synthetic keys over a 2^23 domain,
//! so heads + entries + build keys spill the private caches): that is the
//! regime the three-stage prefetch pipeline exists for, and the shape
//! that holds the SIMD probe acceptance bar. The 150k-row MC shape stays
//! cache-resident by design — its A/B documents that the blocked probe's
//! size gate keeps resident tables on the cheap hash-ahead form instead
//! of paying pipeline overhead prefetch cannot repay.
//!
//! Every configuration is parity-checked (flat output must equal the map
//! oracle byte-for-byte) before it is timed; an end-to-end SC query is run
//! through the SQL engine to print the new `QueryReport::hash_tables`
//! telemetry alongside each engine's `memory_breakdown`; and the measured
//! speedups land in `BENCH_join_group.json` at the workspace root. The
//! acceptance bar held here: flat is ≥1.5× the map baseline on the SC
//! join+group shape, column store.
//!
//! `--test` runs the CI smoke mode: same parity checks and JSON emission,
//! minimal timing.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::Criterion;

use blend_bench::synthetic_rows;
use blend_common::{FxHashMap, FxHashSet};
use blend_parallel::radix_partition;
use blend_sql::hashtable::{GroupIndex, JoinTable};
use blend_sql::SqlEngine;
use blend_storage::{build_engine, EngineKind, FactTable};

/// Median-of-`iters` wall time.
fn time_ns(iters: usize, mut f: impl FnMut() -> usize) -> u64 {
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

// ---- SC join+group shape ---------------------------------------------------

/// Group output: (first row, COUNT(*), COUNT(DISTINCT code)) per group in
/// first-seen order.
type GroupOut = Vec<(u32, i64, i64)>;

/// The pre-flat positional executor's grouping: one `FxHashMap` entry per
/// row for the group index, one `FxHashSet` insert per row for DISTINCT.
fn map_group(keys: &[u64], codes: &[u32]) -> GroupOut {
    let mut index: FxHashMap<u64, u32> = FxHashMap::default();
    let mut groups: Vec<(u32, i64, FxHashSet<u32>)> = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        let gid = *index.entry(k).or_insert_with(|| {
            groups.push((i as u32, 0, FxHashSet::default()));
            (groups.len() - 1) as u32
        }) as usize;
        groups[gid].1 += 1;
        groups[gid].2.insert(codes[i]);
    }
    groups
        .into_iter()
        .map(|(first, n, set)| (first, n, set.len() as i64))
        .collect()
}

/// The flat grouping pipeline: dense ids through `GroupIndex`, a counting
/// pass, and per-group sort-unique over the radix-grouped code column.
fn flat_group(keys: &[u64], codes: &[u32]) -> GroupOut {
    let mut index: GroupIndex<u64> = GroupIndex::with_capacity(keys.len() / 16).unwrap();
    let mut first_rows: Vec<u32> = Vec::new();
    let mut row_gids: Vec<u32> = Vec::with_capacity(keys.len());
    for (i, &k) in keys.iter().enumerate() {
        let before = index.len();
        let gid = index.insert_or_get(k).unwrap();
        if index.len() != before {
            first_rows.push(i as u32);
        }
        row_gids.push(gid);
    }
    let n_groups = index.len();
    let csr = radix_partition(&row_gids, n_groups).unwrap();
    let mut grouped: Vec<u32> = csr.items().iter().map(|&it| codes[it as usize]).collect();
    let offsets = csr.offsets();
    (0..n_groups)
        .map(|g| {
            let run = &mut grouped[offsets[g] as usize..offsets[g + 1] as usize];
            // COUNT(*) falls out of the CSR occupancy; no separate pass.
            let count = run.len() as i64;
            run.sort_unstable();
            let mut distinct = 0i64;
            let mut prev = None;
            for &c in run.iter() {
                if prev != Some(c) {
                    distinct += 1;
                    prev = Some(c);
                }
            }
            (first_rows[g], count, distinct)
        })
        .collect()
}

// ---- MC join shape ---------------------------------------------------------

/// Join output checksum: number of pairs and a position-sensitive hash so
/// ordering bugs cannot cancel out.
fn pair_digest(pairs: impl Iterator<Item = (u32, u32)>) -> (usize, u64) {
    let mut n = 0usize;
    let mut digest = 0u64;
    for (p, b) in pairs {
        n += 1;
        digest = digest
            .rotate_left(5)
            .wrapping_add(((p as u64) << 32) | b as u64);
    }
    (n, digest)
}

/// The pre-flat join: `FxHashMap<u64, Vec<u32>>` entry/push build, map
/// probe per row.
fn map_join(build: &[u64], probe: &[u64]) -> (usize, u64) {
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (i, &k) in build.iter().enumerate() {
        table.entry(k).or_default().push(i as u32);
    }
    pair_digest(probe.iter().enumerate().flat_map(|(i, k)| {
        table
            .get(k)
            .into_iter()
            .flatten()
            .map(move |&b| (i as u32, b))
    }))
}

/// The flat join: CSR `JoinTable` build (two counting passes), bucket-run
/// probe per row.
fn flat_join(build: &[u64], probe: &[u64]) -> (usize, u64) {
    let table = JoinTable::build(build, None).unwrap();
    pair_digest(
        probe
            .iter()
            .enumerate()
            .flat_map(|(i, &k)| table.matches(build, k).map(move |b| (i as u32, b))),
    )
}

// ---- harness ---------------------------------------------------------------

struct CaseResult {
    engine: &'static str,
    shape: &'static str,
    rows: usize,
    map_ns: u64,
    flat_ns: u64,
    simd_on_ns: u64,
    simd_off_ns: u64,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        self.map_ns as f64 / self.flat_ns.max(1) as f64
    }

    /// SIMD-on vs SIMD-off speedup of the flat operator.
    fn simd_speedup(&self) -> f64 {
        self.simd_off_ns as f64 / self.simd_on_ns.max(1) as f64
    }
}

/// Pack the SC group keys (TableId, ColumnId) and gather distinct codes —
/// dictionary codes on the column store, dense string ids on the row store
/// (both bijective with distinct cell values, so distinct counts agree).
fn sc_inputs(table: &dyn FactTable) -> (Vec<u64>, Vec<u32>) {
    let positions: Vec<u32> = (0..table.len() as u32).collect();
    let mut tables_col = Vec::with_capacity(positions.len());
    let mut cols_col = Vec::with_capacity(positions.len());
    table.gather_tables(&positions, &mut tables_col);
    table.gather_columns(&positions, &mut cols_col);
    let keys: Vec<u64> = tables_col
        .iter()
        .zip(&cols_col)
        .map(|(&t, &c)| ((t as u64) << 32) | c as u64)
        .collect();
    let mut codes = Vec::with_capacity(positions.len());
    if !table.gather_value_codes(&positions, &mut codes) {
        let mut ids: FxHashMap<&str, u32> = FxHashMap::default();
        codes = positions
            .iter()
            .map(|&p| {
                let s = table.value_at(p as usize);
                let next = ids.len() as u32;
                *ids.entry(s).or_insert(next)
            })
            .collect();
    }
    (keys, codes)
}

/// Pack (TableId << 32 | RowId) join keys for the positions matching an
/// IN-list of `n_vals` vocabulary values offset by `stride`.
fn mc_side(table: &dyn FactTable, n_vals: u32, stride: u32, offset: u32) -> Vec<u64> {
    let mut positions: Vec<u32> = Vec::new();
    for i in 0..n_vals {
        let v = format!("v{}", (offset + i * stride) % 997);
        positions.extend_from_slice(table.postings(&v));
    }
    let mut tables_col = Vec::with_capacity(positions.len());
    let mut rows_col = Vec::with_capacity(positions.len());
    table.gather_tables(&positions, &mut tables_col);
    table.gather_rows(&positions, &mut rows_col);
    tables_col
        .iter()
        .zip(&rows_col)
        .map(|(&t, &r)| ((t as u64) << 32) | r as u64)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let iters = if smoke { 5 } else { 31 };
    let rows = synthetic_rows(120, 250, 5); // 150_000 fact rows
    let n_rows = rows.len();
    println!(
        "== bench `join_group` (150k rows{})",
        if smoke { ", --test smoke mode" } else { "" }
    );

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("join_group");
    group.sample_size(if smoke { 2 } else { 20 });

    let mut results: Vec<CaseResult> = Vec::new();
    for kind in [EngineKind::Row, EngineKind::Column] {
        let table = build_engine(kind, rows.clone());
        println!("{}", table.memory_breakdown().report());

        // End-to-end SC query through the SQL engine: prints the flat
        // hash-table telemetry the executor now records.
        let eng = SqlEngine::with_alltables(build_engine(kind, rows.clone()));
        let (_, report) = eng
            .execute_with_report(
                "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
                 GROUP BY TableId, ColumnId ORDER BY score DESC LIMIT 10",
            )
            .expect("SC query runs");
        for h in &report.hash_tables {
            // Join nanos cover the table build only; group nanos cover the
            // whole fused index+aggregate phase (see HashTableStats docs).
            println!(
                "  {} hash-table: {} {:.3}ms, {} buckets, max chain {}, {} partition(s)",
                h.phase,
                if h.phase == "group" {
                    "index+aggregate"
                } else {
                    "build"
                },
                h.build_nanos as f64 / 1e6,
                h.buckets,
                h.max_chain,
                h.partitions
            );
        }

        let label = kind.label().to_lowercase();

        // SC join+group shape: GROUP BY (TableId, ColumnId) + distinct
        // over the full 150k-row position space.
        let (sc_keys, sc_codes) = sc_inputs(table.as_ref());
        let want = map_group(&sc_keys, &sc_codes);
        assert_eq!(
            flat_group(&sc_keys, &sc_codes),
            want,
            "{}/sc: flat grouping diverged from the map oracle",
            kind.label()
        );
        let map_ns = time_ns(iters, || map_group(&sc_keys, &sc_codes).len());
        let flat_ns = time_ns(iters, || flat_group(&sc_keys, &sc_codes).len());
        // SIMD A/B over the flat pipeline (striped radix counting is the
        // dispatched kernel inside it), with parity on both forced paths.
        for vector in [false, true] {
            blend_simd::force(Some(vector));
            assert_eq!(
                flat_group(&sc_keys, &sc_codes),
                want,
                "{}/sc: vector={vector} diverged from the map oracle",
                kind.label()
            );
        }
        blend_simd::force(None);
        let (sc_simd_on_ns, sc_simd_off_ns) = blend_bench::simd_ab_ns(iters, || {
            std::hint::black_box(flat_group(&sc_keys, &sc_codes).len());
        });
        if !smoke {
            group.bench_function(format!("{label}_sc_group_map"), |b| {
                b.iter(|| map_group(&sc_keys, &sc_codes).len())
            });
            group.bench_function(format!("{label}_sc_group_flat"), |b| {
                b.iter(|| flat_group(&sc_keys, &sc_codes).len())
            });
        }
        let r = CaseResult {
            engine: kind.label(),
            shape: "sc_join_group",
            rows: sc_keys.len(),
            map_ns,
            flat_ns,
            simd_on_ns: sc_simd_on_ns,
            simd_off_ns: sc_simd_off_ns,
        };
        println!(
            "  -> {label}/sc_join_group: {} rows, {} groups, map {:.3}ms, flat {:.3}ms, \
             speedup {:.2}x, simd on {:.3}ms / off {:.3}ms ({:.2}x)",
            r.rows,
            want.len(),
            r.map_ns as f64 / 1e6,
            r.flat_ns as f64 / 1e6,
            r.speedup(),
            r.simd_on_ns as f64 / 1e6,
            r.simd_off_ns as f64 / 1e6,
            r.simd_speedup()
        );
        results.push(r);

        // MC join shape: two broad IN-list scans self-joined on
        // (TableId, RowId).
        let build = mc_side(table.as_ref(), 120, 3, 0);
        let probe = mc_side(table.as_ref(), 120, 5, 1);
        let want = map_join(&build, &probe);
        assert_eq!(
            flat_join(&build, &probe),
            want,
            "{}/mc: flat join diverged from the map oracle",
            kind.label()
        );
        // The probe path in isolation: one table build, then the blocked
        // `probe_all` under both forced dispatch paths — parity first,
        // then the interleaved A/B the SIMD acceptance bar reads.
        let jt = JoinTable::build(&build, None).unwrap();
        for vector in [false, true] {
            blend_simd::force(Some(vector));
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            jt.probe_all(&build, &probe, |p, b| pairs.push((p, b)));
            assert_eq!(
                pair_digest(pairs.into_iter()),
                want,
                "{}/mc: vector={vector} blocked probe diverged",
                kind.label()
            );
        }
        blend_simd::force(None);
        let (mc_simd_on_ns, mc_simd_off_ns) = blend_bench::simd_ab_ns(iters, || {
            let mut n = 0usize;
            jt.probe_all(&build, &probe, |_, _| n += 1);
            std::hint::black_box(n);
        });

        let map_ns = time_ns(iters, || map_join(&build, &probe).0);
        let flat_ns = time_ns(iters, || flat_join(&build, &probe).0);
        if !smoke {
            group.bench_function(format!("{label}_mc_join_map"), |b| {
                b.iter(|| map_join(&build, &probe).0)
            });
            group.bench_function(format!("{label}_mc_join_flat"), |b| {
                b.iter(|| flat_join(&build, &probe).0)
            });
        }
        let r = CaseResult {
            engine: kind.label(),
            shape: "mc_join",
            rows: build.len() + probe.len(),
            map_ns,
            flat_ns,
            simd_on_ns: mc_simd_on_ns,
            simd_off_ns: mc_simd_off_ns,
        };
        println!(
            "  -> {label}/mc_join: {}+{} rows, {} matches, map {:.3}ms, flat {:.3}ms, \
             speedup {:.2}x, probe simd on {:.3}ms / off {:.3}ms ({:.2}x)",
            build.len(),
            probe.len(),
            want.0,
            r.map_ns as f64 / 1e6,
            r.flat_ns as f64 / 1e6,
            r.speedup(),
            r.simd_on_ns as f64 / 1e6,
            r.simd_off_ns as f64 / 1e6,
            r.simd_speedup()
        );
        results.push(r);
    }
    // XL probe shape: the blocked probe kernel where its prefetch pipeline
    // matters — a join table far too big for the private caches (~80 MB of
    // CSR arrays + build keys at full size). Deterministic xorshift64*
    // keys over a 2^23 domain; engine-independent (the probe kernel never
    // sees the storage layer).
    {
        let n_xl = if smoke { 60_000 } else { 4_000_000 };
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let build: Vec<u64> = (0..n_xl).map(|_| next() & ((1 << 23) - 1)).collect();
        let probe: Vec<u64> = (0..n_xl).map(|_| next() & ((1 << 23) - 1)).collect();
        let want = map_join(&build, &probe);
        assert_eq!(
            flat_join(&build, &probe),
            want,
            "xl: flat join diverged from the map oracle"
        );
        let jt = JoinTable::build(&build, None).unwrap();
        for vector in [false, true] {
            blend_simd::force(Some(vector));
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            jt.probe_all(&build, &probe, |p, b| pairs.push((p, b)));
            assert_eq!(
                pair_digest(pairs.into_iter()),
                want,
                "xl: vector={vector} blocked probe diverged"
            );
        }
        blend_simd::force(None);
        let (xl_simd_on_ns, xl_simd_off_ns) = blend_bench::simd_ab_ns(iters, || {
            let mut n = 0usize;
            jt.probe_all(&build, &probe, |_, _| n += 1);
            std::hint::black_box(n);
        });
        // The map/flat oracles rebuild their HashMaps every iteration —
        // a handful of timed runs is plenty at this size.
        let map_ns = time_ns(iters.min(7), || map_join(&build, &probe).0);
        let flat_ns = time_ns(iters.min(7), || flat_join(&build, &probe).0);
        let r = CaseResult {
            engine: "Synthetic",
            shape: "xl_probe",
            rows: build.len() + probe.len(),
            map_ns,
            flat_ns,
            simd_on_ns: xl_simd_on_ns,
            simd_off_ns: xl_simd_off_ns,
        };
        println!(
            "  -> synthetic/xl_probe: {}+{} rows, {} matches, map {:.3}ms, flat {:.3}ms, \
             speedup {:.2}x, probe simd on {:.3}ms / off {:.3}ms ({:.2}x)",
            build.len(),
            probe.len(),
            want.0,
            r.map_ns as f64 / 1e6,
            r.flat_ns as f64 / 1e6,
            r.speedup(),
            r.simd_on_ns as f64 / 1e6,
            r.simd_off_ns as f64 / 1e6,
            r.simd_speedup()
        );
        results.push(r);
    }
    group.finish();

    // The acceptance bar this bench exists to hold: flat join+group is at
    // least 1.5x the map-based baseline on the SC shape, column store.
    let sc_col = results
        .iter()
        .find(|r| r.engine == "Column" && r.shape == "sc_join_group")
        .expect("column SC case ran");
    assert!(
        sc_col.speedup() >= 1.5,
        "column-store SC join+group speedup {:.2}x < 1.5x",
        sc_col.speedup()
    );

    // SIMD acceptance bar: the batched-hash + prefetch probe beats the
    // scalar probe by at least 1.3x on at least one join shape — in
    // practice the XL shape, where the table spills the private caches
    // and the prefetch pipeline has latency to hide. Smoke mode on shared
    // CI runners only rejects outright regressions (parity already held
    // above); full runs hold the real bar.
    let best_probe = results
        .iter()
        .filter(|r| r.shape == "mc_join" || r.shape == "xl_probe")
        .max_by(|a, b| a.simd_speedup().total_cmp(&b.simd_speedup()))
        .expect("probe cases ran");
    let simd_bar = if smoke { 0.5 } else { 1.3 };
    println!(
        "  -> best probe simd speedup: {} at {:.2}x",
        best_probe.engine,
        best_probe.simd_speedup()
    );
    assert!(
        best_probe.simd_speedup() >= simd_bar,
        "best SIMD-on/off probe speedup {:.2}x < {simd_bar}x ({})",
        best_probe.simd_speedup(),
        best_probe.engine
    );

    // Observability overhead bar: the instrumented SC join+group query
    // (root trace + scan/join/group spans + metric cells) must not tax
    // the end-to-end path. Full runs hold the 5% contract; smoke mode on
    // shared CI runners only rejects outright regressions, matching the
    // other timing bars above.
    let obs_engine = SqlEngine::with_alltables(build_engine(EngineKind::Column, rows.clone()));
    let obs_sql = "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
                   GROUP BY TableId, ColumnId ORDER BY score DESC LIMIT 10";
    let (obs_on_ns, obs_off_ns) = blend_bench::obs_overhead_ns(iters, || {
        std::hint::black_box(obs_engine.execute(obs_sql).expect("obs A/B query runs"));
    });
    let obs_slack = if smoke { 1.5 } else { 1.05 };
    println!(
        "  -> obs overhead: enabled {:.3}ms, disabled {:.3}ms ({:+.2}%)",
        obs_on_ns as f64 / 1e6,
        obs_off_ns as f64 / 1e6,
        100.0 * (obs_on_ns as f64 / obs_off_ns.max(1) as f64 - 1.0),
    );
    assert!(
        (obs_on_ns as f64) <= obs_slack * obs_off_ns as f64,
        "observability overhead blew the {obs_slack}x bar: \
         enabled {obs_on_ns}ns vs disabled {obs_off_ns}ns"
    );

    // Machine-readable perf trajectory at the workspace root.
    let mut json = String::from("{\n  \"bench\": \"join_group\",\n");
    let _ = writeln!(json, "  \"rows\": {n_rows},");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"obs_on_ns\": {obs_on_ns},");
    let _ = writeln!(json, "  \"obs_off_ns\": {obs_off_ns},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"shape\": \"{}\", \"rows\": {}, \
             \"map_ns\": {}, \"flat_ns\": {}, \"speedup\": {:.3}, \
             \"simd_on_ns\": {}, \"simd_off_ns\": {}, \"simd_speedup\": {:.3}}}{}",
            r.engine,
            r.shape,
            r.rows,
            r.map_ns,
            r.flat_ns,
            r.speedup(),
            r.simd_on_ns,
            r.simd_off_ns,
            r.simd_speedup(),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_join_group.json");
    std::fs::write(&out, json).expect("write BENCH_join_group.json");
    println!("  wrote {}", out.display());
    blend_obs::dump_if_enabled();
}

//! Deterministic column embeddings via feature hashing.
//!
//! **Substitution notice** (DESIGN.md §4): the paper's semantic baselines
//! encode columns with trained language models — Starmie with a contrastive
//! encoder, DeepJoin with a fine-tuned PLM. Neither a GPU nor pretrained
//! weights are available offline, so this crate provides the closest
//! deterministic stand-in: a *hashed bag-of-features* encoder over value
//! tokens and character trigrams. It preserves the property the experiments
//! depend on — columns drawn from the same domain get nearby vectors even
//! when their exact value sets barely overlap — while remaining fast enough
//! to index whole lakes, and it plugs into the same HNSW retrieval stack.
//!
//! Features per column:
//! * word tokens of each normalized value (weight 1.0, sublinear TF), and
//! * character trigrams of each token (weight `trigram_weight`), which give
//!   lexically related vocabularies ("c3f1-0017" vs "c3f1-0042") similarity
//!   without exact matches.
//!
//! Vectors are ℓ2-normalized so cosine similarity is a dot product.

use blend_common::hash::{combine, hash_str, mix64};
use blend_common::{text, FxHashMap};

/// The column encoder.
#[derive(Debug, Clone)]
pub struct Embedder {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Hash seed (different seeds = different random projections).
    pub seed: u64,
    /// Relative weight of character-trigram features.
    pub trigram_weight: f32,
}

impl Embedder {
    /// Standard configuration (64 dimensions).
    pub fn new(dim: usize, seed: u64) -> Self {
        Embedder {
            dim,
            seed,
            trigram_weight: 0.5,
        }
    }

    #[inline]
    fn slot(&self, feature: u64) -> (usize, f32) {
        let h = mix64(combine(self.seed, feature));
        let idx = (h % self.dim as u64) as usize;
        let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
        (idx, sign)
    }

    /// Embed one cell value: hashed word tokens plus weighted character
    /// trigrams, ℓ2-normalized.
    pub fn embed_value(&self, raw: &str) -> Vec<f32> {
        let norm = text::normalize(raw);
        let mut tf: FxHashMap<u64, f32> = FxHashMap::default(); // feature -> weight
        for tok in text::tokens(&norm) {
            *tf.entry(hash_str(tok)).or_insert(0.0) += 1.0;
            for tri in text::trigrams(tok) {
                let tfh = combine(hash_str(&tri), 0x7213);
                *tf.entry(tfh).or_insert(0.0) += self.trigram_weight;
            }
        }
        let mut v = vec![0.0f32; self.dim];
        for (feature, weight) in tf {
            let (idx, sign) = self.slot(feature);
            v[idx] += sign * weight;
        }
        l2_normalize(&mut v);
        v
    }

    /// Embed a column as the normalized mean of its per-value embeddings.
    ///
    /// Averaging *normalized* value vectors is what makes domain structure
    /// dominate: features shared across a column's values (its domain
    /// vocabulary) accumulate coherently over `n` values, while value-unique
    /// features (serial numbers, ids) grow only like `√n` — so two columns
    /// from the same domain stay close even with zero exact value overlap.
    pub fn embed_column<S: AsRef<str>>(&self, values: &[S]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        for v in values {
            let e = self.embed_value(v.as_ref());
            for (a, x) in acc.iter_mut().zip(e) {
                *a += x;
            }
        }
        l2_normalize(&mut acc);
        acc
    }

    /// Embed a whole table as the mean of its column embeddings
    /// (re-normalized). Used for coarse table-level retrieval.
    pub fn embed_table(&self, columns: &[Vec<String>]) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        for col in columns {
            let e = self.embed_column(col);
            for (a, x) in acc.iter_mut().zip(e) {
                *a += x;
            }
        }
        l2_normalize(&mut acc);
        acc
    }
}

/// In-place ℓ2 normalization (no-op on the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 1e-9 {
        for x in v {
            *x /= n;
        }
    }
}

/// Cosine similarity of two equal-length vectors.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> Embedder {
        Embedder::new(64, 0xE5EED)
    }

    #[test]
    fn deterministic() {
        let e = emb();
        let vals = ["Berlin", "Paris", "Rome"];
        assert_eq!(e.embed_column(&vals), e.embed_column(&vals));
    }

    #[test]
    fn normalized_output() {
        let e = emb();
        let v = e.embed_column(&["alpha", "beta", "gamma"]);
        let n: f32 = v.iter().map(|x| x * x).sum();
        assert!((n - 1.0).abs() < 1e-4);
    }

    #[test]
    fn same_domain_different_values_are_similar() {
        // The property the union benchmark relies on: shared token prefixes
        // give high similarity despite zero exact overlap.
        let e = emb();
        let a: Vec<String> = (0..30).map(|i| format!("c3f1-{:04}", i * 2)).collect();
        let b: Vec<String> = (0..30).map(|i| format!("c3f1-{:04}", i * 2 + 1)).collect();
        let unrelated: Vec<String> = (0..30).map(|i| format!("zz9q8-{i:04}")).collect();
        let va = e.embed_column(&a);
        let vb = e.embed_column(&b);
        let vu = e.embed_column(&unrelated);
        let sim_ab = cosine(&va, &vb);
        let sim_au = cosine(&va, &vu);
        assert!(
            sim_ab > sim_au + 0.2,
            "domain-mates {sim_ab} vs unrelated {sim_au}"
        );
    }

    #[test]
    fn identical_columns_have_similarity_one() {
        let e = emb();
        let v = e.embed_column(&["x1", "x2", "x3"]);
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_column_embeds_to_zero() {
        let e = emb();
        let v = e.embed_column::<&str>(&[]);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn table_embedding_blends_columns() {
        let e = emb();
        let t = e.embed_table(&[
            vec!["alpha".into(), "beta".into()],
            vec!["one".into(), "two".into()],
        ]);
        let c0 = e.embed_column(&["alpha", "beta"]);
        assert!(cosine(&t, &c0) > 0.3);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = Embedder::new(64, 1).embed_column(&["alpha", "beta", "gamma"]);
        let b = Embedder::new(64, 2).embed_column(&["alpha", "beta", "gamma"]);
        assert!(cosine(&a, &b).abs() < 0.9);
    }
}

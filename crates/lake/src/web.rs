//! General web-table / Gittables-style lake generator.
//!
//! Produces the kind of corpus the join-search experiments run on: many
//! modest tables, a shared string vocabulary with Zipfian skew (a few values
//! occur everywhere, most are rare), and a fraction of numeric columns so
//! correlation machinery has something to index.

use rand::{Rng, SeedableRng};

use blend_common::zipf::Zipf;
use blend_common::{Column, Table, TableId, Value};

use crate::lake::DataLake;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WebLakeConfig {
    pub name: String,
    pub n_tables: usize,
    /// Inclusive row-count range per table.
    pub rows: (usize, usize),
    /// Inclusive column-count range per table.
    pub cols: (usize, usize),
    /// Distinct string values in the shared vocabulary.
    pub vocab: usize,
    /// Zipf exponent of value frequencies (≈1.0 for web-like skew).
    pub zipf_s: f64,
    /// Probability a column is numeric.
    pub numeric_col_ratio: f64,
    /// Probability a cell is NULL.
    pub null_ratio: f64,
    pub seed: u64,
}

impl WebLakeConfig {
    /// A small Gittables-like lake (default experiment substrate).
    pub fn gittables_like(scale: f64) -> Self {
        WebLakeConfig {
            name: "gittables-like".into(),
            n_tables: scaled(1500, scale),
            rows: (10, 60),
            cols: (3, 8),
            vocab: scaled(8000, scale),
            zipf_s: 1.05,
            numeric_col_ratio: 0.3,
            null_ratio: 0.02,
            seed: 0x617A,
        }
    }

    /// A WDC-like lake: more tables, shorter tables, larger vocabulary.
    pub fn wdc_like(scale: f64) -> Self {
        WebLakeConfig {
            name: "wdc-like".into(),
            n_tables: scaled(2500, scale),
            rows: (5, 25),
            cols: (2, 6),
            vocab: scaled(20000, scale),
            zipf_s: 1.1,
            numeric_col_ratio: 0.25,
            null_ratio: 0.05,
            seed: 0x3DC0,
        }
    }

    /// An open-data-like lake: fewer, longer tables.
    pub fn opendata_like(scale: f64) -> Self {
        WebLakeConfig {
            name: "opendata-like".into(),
            n_tables: scaled(400, scale),
            rows: (80, 400),
            cols: (4, 10),
            vocab: scaled(15000, scale),
            zipf_s: 0.9,
            numeric_col_ratio: 0.4,
            null_ratio: 0.03,
            seed: 0x0DA7A,
        }
    }

    /// A DWTC-like lake: many tiny tables.
    pub fn dwtc_like(scale: f64) -> Self {
        WebLakeConfig {
            name: "dwtc-like".into(),
            n_tables: scaled(4000, scale),
            rows: (4, 15),
            cols: (2, 5),
            vocab: scaled(25000, scale),
            zipf_s: 1.15,
            numeric_col_ratio: 0.2,
            null_ratio: 0.05,
            seed: 0xD47C,
        }
    }
}

/// Scale a default size, clamping at a useful minimum.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(8)
}

/// Generate the lake.
pub fn generate(cfg: &WebLakeConfig) -> DataLake {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(cfg.vocab.max(1), cfg.zipf_s);

    let mut tables = Vec::with_capacity(cfg.n_tables);
    for tid in 0..cfg.n_tables {
        let n_rows = rng.random_range(cfg.rows.0..=cfg.rows.1);
        let n_cols = rng.random_range(cfg.cols.0..=cfg.cols.1);
        let mut columns = Vec::with_capacity(n_cols);
        for c in 0..n_cols {
            let numeric = rng.random_bool(cfg.numeric_col_ratio);
            let mut values = Vec::with_capacity(n_rows);
            if numeric {
                // Per-column scale so means differ across columns.
                let base = rng.random_range(10..10_000) as i64;
                for _ in 0..n_rows {
                    if rng.random_bool(cfg.null_ratio) {
                        values.push(Value::Null);
                    } else {
                        values.push(Value::Int(base + rng.random_range(0..1000) as i64));
                    }
                }
            } else {
                for _ in 0..n_rows {
                    if rng.random_bool(cfg.null_ratio) {
                        values.push(Value::Null);
                    } else {
                        let rank = zipf.sample(&mut rng);
                        values.push(Value::Text(format!("v{rank}")));
                    }
                }
            }
            columns.push(Column {
                name: format!("c{c}"),
                values,
            });
        }
        tables.push(
            Table::new(TableId(tid as u32), format!("{}-{tid}", cfg.name), columns)
                .expect("uniform column lengths"),
        );
    }
    DataLake::new(cfg.name.clone(), tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::ColumnType;

    fn tiny_cfg() -> WebLakeConfig {
        WebLakeConfig {
            name: "tiny".into(),
            n_tables: 30,
            rows: (5, 10),
            cols: (2, 4),
            vocab: 200,
            zipf_s: 1.0,
            numeric_col_ratio: 0.5,
            null_ratio: 0.1,
            seed: 42,
        }
    }

    #[test]
    fn respects_shape_bounds() {
        let lake = generate(&tiny_cfg());
        assert_eq!(lake.len(), 30);
        for t in &lake.tables {
            assert!((5..=10).contains(&t.n_rows()));
            assert!((2..=4).contains(&t.n_cols()));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = generate(&tiny_cfg());
        let b = generate(&tiny_cfg());
        assert_eq!(a.tables, b.tables);
        let mut cfg = tiny_cfg();
        cfg.seed = 43;
        let c = generate(&cfg);
        assert_ne!(a.tables, c.tables);
    }

    #[test]
    fn mixes_numeric_and_categorical_columns() {
        let lake = generate(&tiny_cfg());
        let mut numeric = 0;
        let mut categorical = 0;
        for t in &lake.tables {
            for c in &t.columns {
                match c.column_type() {
                    ColumnType::Numeric => numeric += 1,
                    ColumnType::Categorical => categorical += 1,
                }
            }
        }
        assert!(numeric > 0 && categorical > 0);
    }

    #[test]
    fn vocabulary_is_skewed() {
        let mut cfg = tiny_cfg();
        cfg.n_tables = 100;
        cfg.numeric_col_ratio = 0.0;
        cfg.null_ratio = 0.0;
        let lake = generate(&cfg);
        let mut freq: std::collections::HashMap<String, usize> = Default::default();
        for t in &lake.tables {
            for c in &t.columns {
                for v in &c.values {
                    *freq.entry(v.to_string()).or_default() += 1;
                }
            }
        }
        let head = freq.get("v0").copied().unwrap_or(0);
        let tail = freq.get("v150").copied().unwrap_or(0);
        assert!(head > tail.max(1) * 5, "head {head} tail {tail}");
    }

    #[test]
    fn presets_scale() {
        let small = WebLakeConfig::gittables_like(0.01);
        assert!(small.n_tables >= 8);
        let full = WebLakeConfig::gittables_like(1.0);
        assert_eq!(full.n_tables, 1500);
    }
}

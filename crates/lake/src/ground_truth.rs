//! Brute-force oracles for the quality experiments.
//!
//! Every approximate system in the workspace (BLEND seekers, JOSIE, MATE,
//! the sketches, HNSW retrieval) is scored against these exact, slow
//! implementations.

use blend_common::{FxHashMap, FxHashSet, TableId};

use crate::lake::DataLake;

/// Exact single-column join ground truth: for each lake table, the maximum
/// overlap between the query set and any single column's distinct values;
/// returns the top-k tables sorted by overlap (desc, ties by id).
pub fn exact_sc_topk(lake: &DataLake, query: &[String], k: usize) -> Vec<(TableId, usize)> {
    let q: FxHashSet<&str> = query.iter().map(String::as_str).collect();
    let mut topk = blend_common::topk::TopK::new(k);
    for t in &lake.tables {
        let mut best = 0usize;
        for c in &t.columns {
            let distinct: FxHashSet<String> = c
                .values
                .iter()
                .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                .collect();
            let overlap = distinct.iter().filter(|v| q.contains(v.as_str())).count();
            best = best.max(overlap);
        }
        if best > 0 {
            topk.push(best as f64, t.id.0 as u64, (t.id, best));
        }
    }
    topk.into_sorted().into_iter().map(|(_, x)| x).collect()
}

/// Exact keyword-search ground truth: overlap measured over the whole
/// table's distinct values instead of a single column.
pub fn exact_kw_topk(lake: &DataLake, query: &[String], k: usize) -> Vec<(TableId, usize)> {
    let q: FxHashSet<&str> = query.iter().map(String::as_str).collect();
    let mut topk = blend_common::topk::TopK::new(k);
    for t in &lake.tables {
        let distinct: FxHashSet<String> = t
            .columns
            .iter()
            .flat_map(|c| c.values.iter().filter_map(|v| v.normalized()))
            .map(|c| c.into_owned())
            .collect();
        let overlap = distinct.iter().filter(|v| q.contains(v.as_str())).count();
        if overlap > 0 {
            topk.push(overlap as f64, t.id.0 as u64, (t.id, overlap));
        }
    }
    topk.into_sorted().into_iter().map(|(_, x)| x).collect()
}

/// Exact multi-column join ground truth: per table, the number of rows
/// joinable with the query's composite-key rows — a lake-table row is
/// joinable when some query row matches it on *all* key columns, in any
/// column assignment (which, for value-aligned rows, reduces to set
/// inclusion of the query row's values in the lake row's values).
pub fn exact_mc_join_counts(
    lake: &DataLake,
    query_rows: &[Vec<String>],
) -> FxHashMap<TableId, usize> {
    let query_sets: Vec<FxHashSet<&str>> = query_rows
        .iter()
        .map(|r| r.iter().map(String::as_str).collect())
        .collect();
    let mut out = FxHashMap::default();
    for t in &lake.tables {
        let mut joinable = 0usize;
        for r in 0..t.n_rows() {
            let row_vals: FxHashSet<String> = t
                .row(r)
                .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                .collect();
            let hit = query_sets
                .iter()
                .any(|qs| qs.iter().all(|v| row_vals.contains(*v)));
            if hit {
                joinable += 1;
            }
        }
        if joinable > 0 {
            out.insert(t.id, joinable);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::{Column, Table};

    fn lake() -> DataLake {
        let t0 = Table::new(
            TableId(0),
            "t0",
            vec![
                Column::new("a", vec!["x", "y", "z"]),
                Column::new("b", vec!["p", "q", "r"]),
            ],
        )
        .unwrap();
        let t1 = Table::new(
            TableId(1),
            "t1",
            vec![
                Column::new("a", vec!["x", "y", "w"]),
                Column::new("b", vec!["1", "2", "3"]),
            ],
        )
        .unwrap();
        let t2 = Table::new(
            TableId(2),
            "t2",
            vec![Column::new("a", vec!["x", "p", "q"])],
        )
        .unwrap();
        DataLake::new("gt", vec![t0, t1, t2])
    }

    #[test]
    fn sc_ground_truth_measures_single_column_overlap() {
        let lake = lake();
        let q: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let gt = exact_sc_topk(&lake, &q, 3);
        assert_eq!(gt[0], (TableId(0), 3));
        assert_eq!(gt[1], (TableId(1), 2));
        assert_eq!(gt[2], (TableId(2), 1));
    }

    #[test]
    fn kw_ground_truth_spans_columns() {
        let lake = lake();
        // "x" from column a and "q" from column b: KW counts both for t0,
        // SC would cap at 1 per column.
        let q: Vec<String> = ["x", "q"].iter().map(|s| s.to_string()).collect();
        let kw = exact_kw_topk(&lake, &q, 3);
        assert_eq!(kw[0].1, 2);
        // KW's winner must be t0 or t2 (t2 also has both x and q).
        assert!(kw[0].0 == TableId(0) || kw[0].0 == TableId(2));
        let sc = exact_sc_topk(&lake, &q, 3);
        // Single-column view: t0 caps at 1 (x and q live in different
        // columns) while t2 holds both in one column.
        assert_eq!(sc[0], (TableId(2), 2));
        let t0_overlap = sc.iter().find(|(t, _)| *t == TableId(0)).unwrap().1;
        assert_eq!(t0_overlap, 1);
    }

    #[test]
    fn mc_ground_truth_requires_same_row() {
        let lake = lake();
        // ("x","p") never co-occur in a row of t0 (x row has p? row0 = x,p!).
        let q = vec![vec!["x".to_string(), "p".to_string()]];
        let counts = exact_mc_join_counts(&lake, &q);
        // t0 row0 contains both x and p -> joinable.
        assert_eq!(counts.get(&TableId(0)), Some(&1));
        // t1 has x but no p.
        assert_eq!(counts.get(&TableId(1)), None);
    }

    #[test]
    fn empty_query_matches_nothing() {
        let lake = lake();
        assert!(exact_sc_topk(&lake, &[], 5).is_empty());
        assert!(exact_kw_topk(&lake, &[], 5).is_empty());
    }
}

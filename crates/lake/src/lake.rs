//! The in-memory data lake.

use blend_common::{Table, TableId};

/// A named collection of tables, the unit every generator produces and every
/// experiment consumes.
#[derive(Debug, Clone)]
pub struct DataLake {
    /// Lake name (used in experiment output, mirroring Table II).
    pub name: String,
    /// Tables; `tables[i].id == TableId(i)` is an invariant enforced by
    /// [`DataLake::new`].
    pub tables: Vec<Table>,
}

/// Descriptive statistics, the reproduction's analogue of paper Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LakeStats {
    pub tables: usize,
    pub columns: usize,
    pub rows: usize,
    /// Non-null cells = `AllTables` index entries.
    pub cells: usize,
}

impl DataLake {
    /// Build a lake, re-assigning dense table ids in order.
    pub fn new(name: impl Into<String>, mut tables: Vec<Table>) -> Self {
        for (i, t) in tables.iter_mut().enumerate() {
            t.id = TableId(i as u32);
        }
        DataLake {
            name: name.into(),
            tables,
        }
    }

    /// Table accessor by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Compute descriptive statistics.
    pub fn stats(&self) -> LakeStats {
        let mut s = LakeStats {
            tables: self.tables.len(),
            columns: 0,
            rows: 0,
            cells: 0,
        };
        for t in &self.tables {
            s.columns += t.n_cols();
            s.rows += t.n_rows();
            s.cells += t.non_null_cells();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::Column;

    #[test]
    fn ids_are_reassigned_dense() {
        let mk = |id| {
            Table::new(
                TableId(id),
                format!("t{id}"),
                vec![Column::new("a", vec![1i64, 2])],
            )
            .unwrap()
        };
        let lake = DataLake::new("l", vec![mk(7), mk(3)]);
        assert_eq!(lake.tables[0].id, TableId(0));
        assert_eq!(lake.tables[1].id, TableId(1));
        assert_eq!(lake.table(TableId(1)).name, "t3");
    }

    #[test]
    fn stats_accumulate() {
        let t = Table::new(
            TableId(0),
            "t",
            vec![
                Column::new("a", vec![1i64, 2, 3]),
                Column::new(
                    "b",
                    vec![
                        blend_common::Value::Null,
                        blend_common::Value::Int(1),
                        blend_common::Value::Null,
                    ],
                ),
            ],
        )
        .unwrap();
        let lake = DataLake::new("l", vec![t]);
        let s = lake.stats();
        assert_eq!(
            s,
            LakeStats {
                tables: 1,
                columns: 2,
                rows: 3,
                cells: 4
            }
        );
    }
}

//! SANTOS/TUS-style union-search benchmark generator.
//!
//! The original benchmarks contain clusters of tables drawn from the same
//! underlying dataset: unionable tables share column *domains* (semantics)
//! even when their value sets barely overlap. This generator plants exactly
//! that structure:
//!
//! * each **cluster** gets a schema of `cols` columns, each with its own
//!   domain vocabulary `"c{cluster}f{field}-{i}"` — domain tokens are shared
//!   within the cluster, giving semantic (embedding) similarity;
//! * each table in the cluster samples rows from a *window* of its domains,
//!   so pairwise value overlap is controlled by `overlap` (low overlap =
//!   the cases where the paper's semantic baseline beats syntactic search);
//! * **confusable cluster pairs** share the field-name part of their tokens
//!   but are not unionable — the semantic trap that degrades embedding
//!   retrieval at large k (paper Table VI, k ≥ 50);
//! * noise tables fill out the lake.
//!
//! Ground truth = cluster membership, exactly like the originals.

use rand::{Rng, SeedableRng};

use blend_common::{Column, FxHashMap, FxHashSet, Table, TableId, Value};

use crate::lake::DataLake;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct UnionBenchConfig {
    pub name: String,
    pub n_clusters: usize,
    /// Tables per cluster (all mutually unionable).
    pub tables_per_cluster: usize,
    /// Inclusive row range per table.
    pub rows: (usize, usize),
    /// Columns per cluster schema.
    pub cols: usize,
    /// Domain vocabulary size per column.
    pub domain_size: usize,
    /// Fraction of the domain each table draws from (lower = less value
    /// overlap between cluster mates).
    pub overlap: f64,
    /// Number of cluster pairs that share surface vocabulary but are NOT
    /// unionable.
    pub confusable_pairs: usize,
    /// Unrelated noise tables.
    pub noise_tables: usize,
    pub seed: u64,
}

impl UnionBenchConfig {
    /// SANTOS-like: few clusters, several tables each.
    pub fn santos_like(scale: f64) -> Self {
        UnionBenchConfig {
            name: "santos-like".into(),
            n_clusters: super::web::scaled(25, scale),
            tables_per_cluster: 11,
            rows: (20, 60),
            cols: 4,
            domain_size: 150,
            overlap: 0.5,
            confusable_pairs: 5,
            noise_tables: super::web::scaled(120, scale),
            seed: 0x5A27,
        }
    }

    /// SANTOS-Large-like: more clusters and tables.
    pub fn santos_large_like(scale: f64) -> Self {
        UnionBenchConfig {
            n_clusters: super::web::scaled(60, scale),
            tables_per_cluster: 16,
            noise_tables: super::web::scaled(400, scale),
            name: "santos-large-like".into(),
            ..UnionBenchConfig::santos_like(scale)
        }
    }

    /// TUS-like: large clusters (high ideal recall ceiling at small k).
    pub fn tus_like(scale: f64) -> Self {
        UnionBenchConfig {
            name: "tus-like".into(),
            n_clusters: super::web::scaled(10, scale),
            tables_per_cluster: 150,
            rows: (15, 40),
            cols: 3,
            domain_size: 300,
            overlap: 0.4,
            confusable_pairs: 3,
            noise_tables: super::web::scaled(30, scale),
            seed: 0x7A5B,
        }
    }

    /// TUS-Large-like.
    pub fn tus_large_like(scale: f64) -> Self {
        UnionBenchConfig {
            name: "tus-large-like".into(),
            n_clusters: super::web::scaled(14, scale),
            tables_per_cluster: 250,
            ..UnionBenchConfig::tus_like(scale)
        }
    }
}

/// A generated benchmark: lake + query tables + ground truth.
#[derive(Debug, Clone)]
pub struct UnionBenchmark {
    pub lake: DataLake,
    /// Query table ids (one per cluster).
    pub queries: Vec<TableId>,
    /// Query table id → unionable table ids (excluding the query itself).
    pub ground_truth: FxHashMap<TableId, FxHashSet<TableId>>,
}

/// Generate the benchmark.
pub fn generate(cfg: &UnionBenchConfig) -> UnionBenchmark {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut tables: Vec<Table> = Vec::new();
    let mut cluster_members: Vec<Vec<u32>> = Vec::with_capacity(cfg.n_clusters);

    // Confusable pairs share their field namespace: clusters (2i, 2i+1) for
    // i < confusable_pairs use the same field tag but different value ids.
    let field_tag = |cluster: usize, field: usize, cfg: &UnionBenchConfig| -> String {
        let ns = if cluster / 2 < cfg.confusable_pairs {
            cluster / 2 // shared namespace across the pair
        } else {
            cfg.n_clusters + cluster // private namespace
        };
        format!("c{ns}f{field}")
    };

    for cluster in 0..cfg.n_clusters {
        let mut members = Vec::with_capacity(cfg.tables_per_cluster);
        // Column order/subset variation per table keeps the task honest.
        for t in 0..cfg.tables_per_cluster {
            let tid = tables.len() as u32;
            members.push(tid);
            let n_rows = rng.random_range(cfg.rows.0..=cfg.rows.1);
            // Window of the domain this table samples from.
            let window = ((cfg.domain_size as f64) * cfg.overlap).max(2.0) as usize;
            let window_start = if cfg.domain_size > window {
                rng.random_range(0..=cfg.domain_size - window)
            } else {
                0
            };
            let mut columns = Vec::with_capacity(cfg.cols);
            // Rotate column order by table index.
            for c0 in 0..cfg.cols {
                let field = (c0 + t) % cfg.cols;
                let tag = field_tag(cluster, field, cfg);
                let mut values = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    // Confusable clusters draw from odd/even halves so that
                    // surface tokens match but exact values rarely do.
                    let vid = window_start + rng.random_range(0..window);
                    let vid = if cluster / 2 < cfg.confusable_pairs {
                        vid * 2 + (cluster % 2)
                    } else {
                        vid
                    };
                    values.push(Value::Text(format!("{tag}-{vid:04}")));
                }
                columns.push(Column {
                    name: format!("col{field}"),
                    values,
                });
            }
            tables.push(
                Table::new(
                    TableId(tid),
                    format!("{}-cl{cluster}-t{t}", cfg.name),
                    columns,
                )
                .expect("uniform columns"),
            );
        }
        cluster_members.push(members);
    }

    // Noise tables with a private vocabulary.
    for n in 0..cfg.noise_tables {
        let tid = tables.len() as u32;
        let n_rows = rng.random_range(cfg.rows.0..=cfg.rows.1);
        let n_cols = rng.random_range(2..=cfg.cols.max(2));
        let mut columns = Vec::with_capacity(n_cols);
        for c in 0..n_cols {
            let mut values = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                values.push(Value::Text(format!(
                    "noise{n}c{c}-{}",
                    rng.random_range(0..cfg.domain_size)
                )));
            }
            columns.push(Column {
                name: format!("n{c}"),
                values,
            });
        }
        tables.push(
            Table::new(TableId(tid), format!("{}-noise{n}", cfg.name), columns)
                .expect("uniform columns"),
        );
    }

    let lake = DataLake::new(cfg.name.clone(), tables);

    // Queries: the first table of each cluster; ground truth: cluster mates.
    let mut queries = Vec::with_capacity(cfg.n_clusters);
    let mut ground_truth: FxHashMap<TableId, FxHashSet<TableId>> = FxHashMap::default();
    for members in &cluster_members {
        let q = TableId(members[0]);
        queries.push(q);
        let mates: FxHashSet<TableId> = members[1..].iter().map(|&m| TableId(m)).collect();
        ground_truth.insert(q, mates);
    }

    UnionBenchmark {
        lake,
        queries,
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> UnionBenchConfig {
        UnionBenchConfig {
            name: "t".into(),
            n_clusters: 4,
            tables_per_cluster: 5,
            rows: (8, 12),
            cols: 3,
            domain_size: 40,
            overlap: 0.5,
            confusable_pairs: 1,
            noise_tables: 6,
            seed: 1,
        }
    }

    fn distinct_values(t: &Table) -> FxHashSet<String> {
        t.columns
            .iter()
            .flat_map(|c| c.values.iter().map(|v| v.to_string()))
            .collect()
    }

    #[test]
    fn shapes_and_ground_truth() {
        let b = generate(&tiny());
        assert_eq!(b.lake.len(), 4 * 5 + 6);
        assert_eq!(b.queries.len(), 4);
        for q in &b.queries {
            assert_eq!(b.ground_truth[q].len(), 4); // 5 members minus query
            assert!(!b.ground_truth[q].contains(q));
        }
    }

    #[test]
    fn cluster_mates_share_vocabulary_noise_does_not() {
        let b = generate(&tiny());
        let q = b.queries[3]; // non-confusable cluster
        let qv = distinct_values(b.lake.table(q));
        let mate = *b.ground_truth[&q].iter().next().unwrap();
        let mv = distinct_values(b.lake.table(mate));
        assert!(qv.intersection(&mv).count() > 0, "mates must overlap");
        // Noise table shares nothing.
        let noise = &b.lake.tables[b.lake.len() - 1];
        let nv = distinct_values(noise);
        assert_eq!(qv.intersection(&nv).count(), 0);
    }

    #[test]
    fn confusable_pair_shares_tokens_but_not_values() {
        let b = generate(&tiny());
        // Clusters 0 and 1 form a confusable pair.
        let q0 = b.queries[0];
        let q1 = b.queries[1];
        let v0 = distinct_values(b.lake.table(q0));
        let v1 = distinct_values(b.lake.table(q1));
        // Exact value overlap must be empty (odd/even halves)...
        assert_eq!(v0.intersection(&v1).count(), 0);
        // ...but the field-tag prefixes coincide.
        let prefix = |s: &str| s.split('-').next().unwrap().to_string();
        let p0: FxHashSet<String> = v0.iter().map(|s| prefix(s)).collect();
        let p1: FxHashSet<String> = v1.iter().map(|s| prefix(s)).collect();
        assert!(p0.intersection(&p1).count() > 0);
        // And they are NOT unionable per ground truth.
        assert!(!b.ground_truth[&q0].contains(&q1));
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.lake.tables, b.lake.tables);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn presets_have_sane_shapes() {
        for cfg in [
            UnionBenchConfig::santos_like(0.05),
            UnionBenchConfig::tus_like(0.3),
        ] {
            assert!(cfg.n_clusters >= 2);
            assert!(cfg.tables_per_cluster >= 2);
        }
    }
}

//! Query workload generators.
//!
//! Mirrors how the original papers sample queries from their lakes: JOSIE
//! draws query columns of target sizes from the lake itself, MATE samples
//! query tables with composite keys, the imputation experiment samples
//! column pairs and deletes values.

use rand::{Rng, SeedableRng};

use blend_common::{ColumnType, FxHashSet, TableId};

use crate::lake::DataLake;

/// A single-column join query: a set of distinct normalized values.
pub type ScQuery = Vec<String>;

/// A multi-column query: rows × columns of normalized values.
#[derive(Debug, Clone, PartialEq)]
pub struct McQuery {
    /// One entry per query row; all rows have the same arity.
    pub rows: Vec<Vec<String>>,
    /// The lake table the query was sampled from (for validation).
    pub source: TableId,
}

/// An imputation task: complete example rows plus lookup values whose
/// second component is missing.
#[derive(Debug, Clone)]
pub struct ImputationQuery {
    /// Complete (key, value) examples.
    pub examples: Vec<(String, String)>,
    /// Keys whose value must be found.
    pub queries: Vec<String>,
    pub source: TableId,
}

/// Sample JOSIE-style single-column queries: for each target size, draw
/// `per_size` queries by unioning distinct values of randomly chosen
/// categorical columns until the size is reached (the originals concatenate
/// lake columns the same way to hit large query sizes).
pub fn sc_queries(
    lake: &DataLake,
    sizes: &[usize],
    per_size: usize,
    seed: u64,
) -> Vec<(usize, Vec<ScQuery>)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut batch = Vec::with_capacity(per_size);
        for _ in 0..per_size {
            let mut vals: FxHashSet<String> = FxHashSet::default();
            let mut guard = 0;
            while vals.len() < size && guard < 500 {
                guard += 1;
                let t = &lake.tables[rng.random_range(0..lake.len())];
                if t.n_cols() == 0 {
                    continue;
                }
                let c = &t.columns[rng.random_range(0..t.n_cols())];
                for v in &c.values {
                    if let Some(n) = v.normalized() {
                        vals.insert(n.into_owned());
                        if vals.len() >= size {
                            break;
                        }
                    }
                }
            }
            let mut q: Vec<String> = vals.into_iter().collect();
            q.sort_unstable(); // determinism
            q.truncate(size);
            batch.push(q);
        }
        out.push((size, batch));
    }
    out
}

/// Sample MATE-style multi-column queries: `n_cols` adjacent columns and up
/// to `n_rows` complete rows from a random lake table.
///
/// Rows with repeated components are skipped: a composite key like
/// `(x, x)` has ambiguous alignment semantics (set containment accepts a
/// single matching cell, column alignment demands two), and none of the
/// systems under comparison define it identically.
pub fn mc_queries(
    lake: &DataLake,
    n_queries: usize,
    n_cols: usize,
    n_rows: usize,
    seed: u64,
) -> Vec<McQuery> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_queries);
    let mut guard = 0;
    while out.len() < n_queries && guard < n_queries * 200 {
        guard += 1;
        let t = &lake.tables[rng.random_range(0..lake.len())];
        if t.n_cols() < n_cols || t.n_rows() == 0 {
            continue;
        }
        let start = rng.random_range(0..=t.n_cols() - n_cols);
        let mut rows = Vec::new();
        for r in 0..t.n_rows() {
            let mut row = Vec::with_capacity(n_cols);
            let mut complete = true;
            for c in start..start + n_cols {
                match t.cell(r, c).normalized() {
                    Some(v) => row.push(v.into_owned()),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let distinct: FxHashSet<&String> = row.iter().collect();
            if complete && distinct.len() == row.len() {
                rows.push(row);
                if rows.len() >= n_rows {
                    break;
                }
            }
        }
        if rows.len() >= 2 {
            out.push(McQuery { rows, source: t.id });
        }
    }
    out
}

/// Sample keyword queries: `n_keywords` distinct values drawn lake-wide.
pub fn kw_queries(lake: &DataLake, n_queries: usize, n_keywords: usize, seed: u64) -> Vec<ScQuery> {
    sc_queries(lake, &[n_keywords], n_queries, seed)
        .pop()
        .map(|(_, qs)| qs)
        .unwrap_or_default()
}

/// Sample imputation tasks: a categorical column pair from a random table;
/// the first `n_examples` complete rows become examples, the remaining keys
/// become lookups (paper §VIII-B.3 uses 5 examples).
pub fn imputation_workload(
    lake: &DataLake,
    n_queries: usize,
    n_examples: usize,
    seed: u64,
) -> Vec<ImputationQuery> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n_queries);
    let mut guard = 0;
    while out.len() < n_queries && guard < n_queries * 300 {
        guard += 1;
        let t = &lake.tables[rng.random_range(0..lake.len())];
        let cat_cols: Vec<usize> = (0..t.n_cols())
            .filter(|&c| t.columns[c].column_type() == ColumnType::Categorical)
            .collect();
        if cat_cols.len() < 2 {
            continue;
        }
        let a = cat_cols[rng.random_range(0..cat_cols.len())];
        let mut b = cat_cols[rng.random_range(0..cat_cols.len())];
        if a == b {
            b = *cat_cols.iter().find(|&&c| c != a).expect("len >= 2");
        }
        let mut pairs = Vec::new();
        for r in 0..t.n_rows() {
            if let (Some(x), Some(y)) = (t.cell(r, a).normalized(), t.cell(r, b).normalized()) {
                pairs.push((x.into_owned(), y.into_owned()));
            }
        }
        if pairs.len() <= n_examples + 1 {
            continue;
        }
        let examples = pairs[..n_examples].to_vec();
        let queries = pairs[n_examples..].iter().map(|(k, _)| k.clone()).collect();
        out.push(ImputationQuery {
            examples,
            queries,
            source: t.id,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::{generate, WebLakeConfig};

    fn lake() -> DataLake {
        generate(&WebLakeConfig {
            name: "wl".into(),
            n_tables: 50,
            rows: (10, 30),
            cols: (3, 5),
            vocab: 500,
            zipf_s: 1.0,
            numeric_col_ratio: 0.3,
            null_ratio: 0.05,
            seed: 5,
        })
    }

    #[test]
    fn sc_queries_hit_target_sizes() {
        let lake = lake();
        let batches = sc_queries(&lake, &[10, 50], 5, 1);
        assert_eq!(batches.len(), 2);
        for (size, qs) in batches {
            assert_eq!(qs.len(), 5);
            for q in qs {
                assert_eq!(q.len(), size);
                // Distinct values.
                let set: FxHashSet<&String> = q.iter().collect();
                assert_eq!(set.len(), q.len());
            }
        }
    }

    #[test]
    fn mc_queries_have_consistent_arity_and_source() {
        let lake = lake();
        let qs = mc_queries(&lake, 8, 2, 5, 2);
        assert!(!qs.is_empty());
        for q in qs {
            assert!(q.rows.len() >= 2);
            assert!(q.rows.iter().all(|r| r.len() == 2));
            // Source rows must actually exist in the source table.
            let t = lake.table(q.source);
            let all: FxHashSet<String> = t
                .columns
                .iter()
                .flat_map(|c| c.values.iter().filter_map(|v| v.normalized()))
                .map(|c| c.into_owned())
                .collect();
            for row in &q.rows {
                for v in row {
                    assert!(all.contains(v));
                }
            }
        }
    }

    #[test]
    fn imputation_examples_disjoint_from_queries() {
        let lake = lake();
        let qs = imputation_workload(&lake, 5, 3, 3);
        assert!(!qs.is_empty());
        for q in qs {
            assert_eq!(q.examples.len(), 3);
            assert!(!q.queries.is_empty());
        }
    }

    #[test]
    fn workloads_deterministic() {
        let lake = lake();
        assert_eq!(
            sc_queries(&lake, &[20], 3, 9),
            sc_queries(&lake, &[20], 3, 9)
        );
        assert_eq!(mc_queries(&lake, 4, 2, 4, 9), mc_queries(&lake, 4, 2, 4, 9));
    }

    #[test]
    fn kw_queries_shape() {
        let lake = lake();
        let qs = kw_queries(&lake, 4, 6, 7);
        assert_eq!(qs.len(), 4);
        assert!(qs.iter().all(|q| q.len() == 6));
    }
}

//! NYC-open-data-style correlation benchmark generator (paper Table VII).
//!
//! Each query consists of a join-key column and a numeric target. The
//! generator plants lake tables whose numeric columns correlate with the
//! target at controlled levels, plus pure-noise columns and tables. Two
//! variants mirror the paper's split:
//!
//! * **Cat.** — join keys are categorical strings (`fraction_numeric_keys =
//!   0`), the case the original QCR sketch index supports;
//! * **All** — a share of queries use *numeric* join keys, which the
//!   baseline cannot index (it only sketches categorical key columns) but
//!   BLEND's value-typed inverted index handles transparently.
//!
//! Exact Pearson ground truth is computed by brute-force joining.

use rand::{Rng, SeedableRng};

use blend_common::stats::pearson;
use blend_common::{Column, FxHashMap, Table, TableId, Value};

use crate::lake::DataLake;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CorrBenchConfig {
    pub name: String,
    pub n_queries: usize,
    /// Number of joinable tables planted per query.
    pub correlated_per_query: usize,
    /// Inclusive row range for planted tables.
    pub rows: (usize, usize),
    /// Distinct join keys per query universe.
    pub key_domain: usize,
    /// Fraction of queries whose join keys are numeric (0.0 = "Cat.").
    pub fraction_numeric_keys: f64,
    /// Correlation magnitudes planted (cycled over tables).
    pub corr_levels: Vec<f64>,
    /// Independent numeric noise columns per planted table.
    pub noise_columns: usize,
    /// Completely unrelated tables.
    pub noise_tables: usize,
    pub seed: u64,
}

impl CorrBenchConfig {
    /// NYC (Cat.)-like benchmark.
    pub fn nyc_cat_like(scale: f64) -> Self {
        CorrBenchConfig {
            name: "nyc-cat-like".into(),
            n_queries: super::web::scaled(30, scale).min(60),
            correlated_per_query: 18,
            rows: (60, 140),
            key_domain: 120,
            fraction_numeric_keys: 0.0,
            corr_levels: vec![0.95, 0.85, 0.7, 0.55, 0.4, 0.25, 0.1],
            noise_columns: 2,
            noise_tables: super::web::scaled(60, scale),
            seed: 0x2C0B,
        }
    }

    /// NYC (All)-like benchmark: half the queries join on numeric keys.
    pub fn nyc_all_like(scale: f64) -> Self {
        CorrBenchConfig {
            name: "nyc-all-like".into(),
            fraction_numeric_keys: 0.5,
            seed: 0x2C0C,
            ..CorrBenchConfig::nyc_cat_like(scale)
        }
    }
}

/// One correlation query: keys + numeric target, aligned by position.
#[derive(Debug, Clone)]
pub struct CorrQuery {
    /// Normalized join-key strings, unique.
    pub keys: Vec<String>,
    /// Target value per key.
    pub target: Vec<f64>,
    /// Whether the keys are numeric (the "All"-only case).
    pub numeric_keys: bool,
}

/// A generated correlation benchmark.
#[derive(Debug, Clone)]
pub struct CorrBenchmark {
    pub lake: DataLake,
    pub queries: Vec<CorrQuery>,
}

/// Standard-normal sample via Box–Muller (rand has no normal distribution
/// in the allowed dependency set).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Generate the benchmark.
pub fn generate(cfg: &CorrBenchConfig) -> CorrBenchmark {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut tables: Vec<Table> = Vec::new();
    let mut queries = Vec::with_capacity(cfg.n_queries);

    for qi in 0..cfg.n_queries {
        let numeric_keys = rng.random_bool(cfg.fraction_numeric_keys);
        // Key universe and latent target.
        let keys: Vec<String> = (0..cfg.key_domain)
            .map(|j| {
                if numeric_keys {
                    // Plain integers, disjoint ranges per query.
                    format!("{}", 1_000_000 + qi * 10_000 + j)
                } else {
                    format!("q{qi}key{j:04}")
                }
            })
            .collect();
        let latent: Vec<f64> = (0..cfg.key_domain).map(|_| normal(&mut rng)).collect();

        queries.push(CorrQuery {
            keys: keys.clone(),
            target: latent.clone(),
            numeric_keys,
        });

        // Planted joinable tables at cycled correlation levels.
        for ti in 0..cfg.correlated_per_query {
            let rho = cfg.corr_levels[ti % cfg.corr_levels.len()];
            let sign = if ti % 2 == 0 { 1.0 } else { -1.0 };
            let n_rows = rng
                .random_range(cfg.rows.0..=cfg.rows.1)
                .min(cfg.key_domain);
            // Sample keys without replacement.
            let mut idx: Vec<usize> = (0..cfg.key_domain).collect();
            for i in 0..n_rows {
                let j = rng.random_range(i..cfg.key_domain);
                idx.swap(i, j);
            }
            idx.truncate(n_rows);

            let key_col: Vec<Value> = idx
                .iter()
                .map(|&j| {
                    if numeric_keys {
                        Value::Int(keys[j].parse::<i64>().expect("numeric key"))
                    } else {
                        Value::Text(keys[j].clone())
                    }
                })
                .collect();
            let y_col: Vec<Value> = idx
                .iter()
                .map(|&j| {
                    let e = normal(&mut rng);
                    let y = sign * (rho * latent[j] + (1.0 - rho * rho).sqrt() * e);
                    Value::Float((y * 1000.0).round() / 1000.0)
                })
                .collect();

            let mut columns = vec![
                Column {
                    name: "key".into(),
                    values: key_col,
                },
                Column {
                    name: "y".into(),
                    values: y_col,
                },
            ];
            for nc in 0..cfg.noise_columns {
                let values: Vec<Value> = (0..n_rows)
                    .map(|_| Value::Float((normal(&mut rng) * 1000.0).round() / 1000.0))
                    .collect();
                columns.push(Column {
                    name: format!("noise{nc}"),
                    values,
                });
            }

            let tid = tables.len() as u32;
            tables.push(
                Table::new(TableId(tid), format!("{}-q{qi}-t{ti}", cfg.name), columns)
                    .expect("uniform columns"),
            );
        }
    }

    // Unrelated noise tables.
    for n in 0..cfg.noise_tables {
        let tid = tables.len() as u32;
        let n_rows = rng.random_range(cfg.rows.0..=cfg.rows.1);
        let columns = vec![
            Column {
                name: "key".into(),
                values: (0..n_rows)
                    .map(|r| Value::Text(format!("noise{n}-{r}")))
                    .collect(),
            },
            Column {
                name: "v".into(),
                values: (0..n_rows)
                    .map(|_| Value::Float((normal(&mut rng) * 1000.0).round() / 1000.0))
                    .collect(),
            },
        ];
        tables.push(
            Table::new(TableId(tid), format!("{}-noise{n}", cfg.name), columns)
                .expect("uniform columns"),
        );
    }

    CorrBenchmark {
        lake: DataLake::new(cfg.name.clone(), tables),
        queries,
    }
}

/// Exact ground truth: top-k lake tables by |Pearson| between the query
/// target and any numeric column, joined on normalized key equality.
///
/// A table's join column is the one with the largest key overlap (at least
/// `min_overlap` matches). Brute force by construction — this is the oracle
/// the approximate systems are scored against.
pub fn exact_topk_tables(
    lake: &DataLake,
    query: &CorrQuery,
    k: usize,
    min_overlap: usize,
) -> Vec<(TableId, f64)> {
    let key_to_target: FxHashMap<&str, f64> = query
        .keys
        .iter()
        .map(String::as_str)
        .zip(query.target.iter().copied())
        .collect();

    let mut topk = blend_common::topk::TopK::new(k);
    for table in &lake.tables {
        // Best joinable column = max overlap with query keys.
        let mut best: Option<(usize, usize)> = None; // (col, overlap)
        for (ci, col) in table.columns.iter().enumerate() {
            let overlap = col
                .values
                .iter()
                .filter_map(|v| v.normalized())
                .filter(|v| key_to_target.contains_key(v.as_ref()))
                .count();
            if overlap >= min_overlap && best.is_none_or(|(_, o)| overlap > o) {
                best = Some((ci, overlap));
            }
        }
        let Some((key_col, _)) = best else { continue };

        // Join (first match per row) and correlate every other numeric col.
        let mut best_corr = 0.0f64;
        for (ci, col) in table.columns.iter().enumerate() {
            if ci == key_col || col.column_type() != blend_common::ColumnType::Numeric {
                continue;
            }
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for r in 0..table.n_rows() {
                let Some(keyv) = table.columns[key_col].values[r].normalized() else {
                    continue;
                };
                let Some(&t) = key_to_target.get(keyv.as_ref()) else {
                    continue;
                };
                let Some(y) = col.values[r].as_f64() else {
                    continue;
                };
                xs.push(t);
                ys.push(y);
            }
            if xs.len() >= min_overlap {
                if let Some(c) = pearson(&xs, &ys) {
                    best_corr = best_corr.max(c.abs());
                }
            }
        }
        if best_corr > 0.0 {
            topk.push(best_corr, table.id.0 as u64, table.id);
        }
    }
    topk.into_sorted()
        .into_iter()
        .map(|(s, t)| (t, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CorrBenchConfig {
        CorrBenchConfig {
            name: "t".into(),
            n_queries: 3,
            correlated_per_query: 6,
            rows: (40, 60),
            key_domain: 80,
            fraction_numeric_keys: 0.0,
            corr_levels: vec![0.9, 0.5, 0.1],
            noise_columns: 1,
            noise_tables: 4,
            seed: 11,
        }
    }

    #[test]
    fn shapes() {
        let b = generate(&tiny());
        assert_eq!(b.queries.len(), 3);
        assert_eq!(b.lake.len(), 3 * 6 + 4);
        for q in &b.queries {
            assert_eq!(q.keys.len(), 80);
            assert_eq!(q.target.len(), 80);
        }
    }

    #[test]
    fn planted_correlations_rank_by_level() {
        let b = generate(&tiny());
        let gt = exact_topk_tables(&b.lake, &b.queries[0], 6, 5);
        assert!(!gt.is_empty());
        // Strongest planted |rho| = 0.9 must rank first with measured
        // correlation near it.
        assert!(gt[0].1 > 0.75, "top correlation {} too weak", gt[0].1);
        // Scores descend.
        assert!(gt.windows(2).all(|w| w[0].1 >= w[1].1));
        // All ground-truth tables for query 0 belong to query 0's plant.
        for (tid, _) in &gt {
            assert!(tid.0 < 6, "table {tid} is not from query 0's plant");
        }
    }

    #[test]
    fn numeric_key_queries_appear_in_all_variant() {
        let mut cfg = tiny();
        cfg.fraction_numeric_keys = 1.0;
        let b = generate(&cfg);
        assert!(b.queries.iter().all(|q| q.numeric_keys));
        // Keys must parse as integers.
        assert!(b.queries[0].keys[0].parse::<i64>().is_ok());
        // And the planted tables' key columns are numeric.
        let t = b.lake.table(TableId(0));
        assert_eq!(
            t.columns[0].column_type(),
            blend_common::ColumnType::Numeric
        );
    }

    #[test]
    fn noise_tables_never_enter_ground_truth() {
        let b = generate(&tiny());
        let n_planted = 3 * 6;
        for q in &b.queries {
            for (tid, _) in exact_topk_tables(&b.lake, q, 10, 5) {
                assert!((tid.0 as usize) < n_planted);
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&tiny());
        let b = generate(&tiny());
        assert_eq!(a.lake.tables, b.lake.tables);
    }
}

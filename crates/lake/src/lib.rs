//! Synthetic data lakes and benchmark workloads.
//!
//! The paper evaluates on ten real lakes (Table II) that are far beyond
//! laptop scale (DWTC alone: 145M tables). Per the reproduction plan
//! (DESIGN.md §4), this crate generates *structurally equivalent* seeded
//! lakes:
//!
//! * [`web`] — general web-table / Gittables-style lakes with Zipfian value
//!   skew, mixed numeric/categorical columns, and configurable scale. These
//!   drive the join-search runtime experiments (Fig. 5/6) and the optimizer
//!   study (Table IV).
//! * [`union_bench`] — SANTOS/TUS-style union-search benchmarks with planted
//!   unionable clusters and exact ground truth (Table VI, Fig. 7, and the
//!   negative-example task of Table III).
//! * [`corr_bench`] — NYC-open-data-style correlation benchmarks with
//!   planted correlations, in categorical-key and numeric-key variants, with
//!   exact Pearson ground truth (Table VII).
//! * [`workloads`] — query workload generators (single-column join queries
//!   by size, composite-key queries, keyword sets, imputation tasks)
//!   mirroring how the original papers sample queries from their lakes.
//! * [`ground_truth`] — brute-force oracles shared by the quality
//!   experiments.
//!
//! Everything is deterministic under a seed; experiment binaries expose the
//! seed and a scale factor (`BLEND_SCALE`).

pub mod corr_bench;
pub mod ground_truth;
pub mod lake;
pub mod union_bench;
pub mod web;
pub mod workloads;

pub use corr_bench::{CorrBenchConfig, CorrBenchmark, CorrQuery};
pub use lake::{DataLake, LakeStats};
pub use union_bench::{UnionBenchConfig, UnionBenchmark};
pub use web::WebLakeConfig;

//! The QCR sketch index (Santos et al., ICDE 2022) — the paper's baseline
//! for correlation discovery (Table VII).
//!
//! For every (categorical key column, numeric column) pair of every lake
//! table, the index stores a *k-minimum-values sketch*: the `h` smallest
//! key hashes together with the numeric value's quadrant bit (above/below
//! the column mean). At query time the same sketch is built for the query's
//! (keys, target) pair and matched; the Quadrant Count Ratio is estimated
//! from the concordance of matched quadrant bits.
//!
//! Two properties of the original are reproduced deliberately because the
//! paper's experiments hinge on them:
//!
//! * **`h` is fixed at indexing time** — changing the sketch size means
//!   re-indexing the lake (BLEND chooses `h` per query instead);
//! * **only categorical key columns are sketched** — numeric join keys are
//!   invisible to the baseline, which is exactly why it collapses on the
//!   NYC (All) benchmark.

use blend_common::hash::hash_str;
use blend_common::stats::mean;
use blend_common::{ColumnType, FxHashMap, TableId};
use blend_lake::DataLake;

/// One sketched column pair.
#[derive(Debug, Clone)]
pub struct QcrSketch {
    pub table: u32,
    pub key_col: u32,
    pub num_col: u32,
    /// `(key hash, quadrant)` sorted ascending by hash; at most `h` entries.
    pub entries: Vec<(u64, bool)>,
}

/// The sketch index.
pub struct QcrIndex {
    sketches: Vec<QcrSketch>,
    /// Sketch ids grouped by key hash presence is unnecessary: retrieval
    /// scans sketches, as the original does within its candidate pruning.
    h: usize,
}

/// Build a `(key, quadrant)` sketch from aligned keys and numeric values.
fn build_sketch(keys: &[&str], values: &[f64], h: usize) -> Vec<(u64, bool)> {
    let m = match mean(values) {
        Some(m) => m,
        None => return Vec::new(),
    };
    // Deduplicate by key hash, keeping the first occurrence (the original
    // hashes distinct keys; repeated keys in a fact table collapse).
    let mut entries: FxHashMap<u64, bool> = FxHashMap::default();
    for (k, v) in keys.iter().zip(values) {
        entries.entry(hash_str(k)).or_insert(*v >= m);
    }
    let mut sorted: Vec<(u64, bool)> = entries.into_iter().collect();
    sorted.sort_unstable_by_key(|&(h, _)| h);
    sorted.truncate(h);
    sorted
}

impl QcrIndex {
    /// Build the index with sketch size `h` (the paper uses `h = 256`).
    pub fn build(lake: &DataLake, h: usize) -> Self {
        let mut sketches = Vec::new();
        for table in &lake.tables {
            let types: Vec<ColumnType> = table.columns.iter().map(|c| c.column_type()).collect();
            for (ki, key_col) in table.columns.iter().enumerate() {
                // The baseline's restriction: categorical keys only.
                if types[ki] != ColumnType::Categorical {
                    continue;
                }
                for (ni, num_col) in table.columns.iter().enumerate() {
                    if ni == ki || types[ni] != ColumnType::Numeric {
                        continue;
                    }
                    let mut keys: Vec<String> = Vec::new();
                    let mut vals: Vec<f64> = Vec::new();
                    for r in 0..table.n_rows() {
                        if let (Some(k), Some(v)) =
                            (key_col.values[r].normalized(), num_col.values[r].as_f64())
                        {
                            keys.push(k.into_owned());
                            vals.push(v);
                        }
                    }
                    let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
                    let entries = build_sketch(&key_refs, &vals, h);
                    if entries.len() >= 2 {
                        sketches.push(QcrSketch {
                            table: table.id.0,
                            key_col: ki as u32,
                            num_col: ni as u32,
                            entries,
                        });
                    }
                }
            }
        }
        QcrIndex { sketches, h }
    }

    /// Number of stored sketches (column pairs — the quadratic blow-up the
    /// paper's unified index avoids).
    pub fn n_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// Sketch size parameter.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Top-k tables whose sketched column pairs have the highest estimated
    /// |QCR| against the query `(keys, target)`.
    ///
    /// `min_matches` guards against spurious estimates from tiny
    /// intersections (the original uses a support threshold too).
    pub fn query(
        &self,
        keys: &[String],
        target: &[f64],
        k: usize,
        min_matches: usize,
    ) -> Vec<(TableId, f64)> {
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let query_sketch = build_sketch(&key_refs, target, self.h);
        if query_sketch.is_empty() {
            return Vec::new();
        }
        let qmap: FxHashMap<u64, bool> = query_sketch.iter().copied().collect();

        let mut best_per_table: FxHashMap<u32, f64> = FxHashMap::default();
        for s in &self.sketches {
            let mut n = 0i64;
            let mut concordant = 0i64;
            for &(h, q) in &s.entries {
                if let Some(&tq) = qmap.get(&h) {
                    n += 1;
                    if q == tq {
                        concordant += 1;
                    } else {
                        concordant -= 1;
                    }
                }
            }
            if (n as usize) < min_matches {
                continue;
            }
            let est = (concordant as f64 / n as f64).abs();
            let e = best_per_table.entry(s.table).or_insert(0.0);
            if est > *e {
                *e = est;
            }
        }

        let mut topk = blend_common::topk::TopK::new(k);
        for (t, score) in best_per_table {
            topk.push(score, t as u64, (TableId(t), score));
        }
        topk.into_sorted().into_iter().map(|(_, x)| x).collect()
    }

    /// Estimated resident bytes (Table VIII input): 9 bytes per entry
    /// (hash + bit) plus directory overhead.
    pub fn size_bytes(&self) -> usize {
        self.sketches
            .iter()
            .map(|s| s.entries.len() * 9 + std::mem::size_of::<QcrSketch>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_lake::corr_bench::{exact_topk_tables, generate, CorrBenchConfig};

    fn bench(numeric: f64, seed: u64) -> blend_lake::CorrBenchmark {
        generate(&CorrBenchConfig {
            name: "qcr-test".into(),
            n_queries: 4,
            correlated_per_query: 8,
            rows: (60, 100),
            key_domain: 100,
            fraction_numeric_keys: numeric,
            corr_levels: vec![0.95, 0.7, 0.4, 0.1],
            noise_columns: 1,
            noise_tables: 10,
            seed,
        })
    }

    #[test]
    fn finds_strongly_correlated_tables_on_categorical_keys() {
        let b = bench(0.0, 5);
        let idx = QcrIndex::build(&b.lake, 256);
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &b.queries {
            let got: Vec<TableId> = idx
                .query(&q.keys, &q.target, 8, 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            let want: std::collections::HashSet<TableId> = exact_topk_tables(&b.lake, q, 8, 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            total += want.len();
            hit += got.iter().filter(|t| want.contains(t)).count();
        }
        let recall = hit as f64 / total as f64;
        assert!(recall > 0.5, "QCR sketch recall too low: {recall}");
    }

    #[test]
    fn numeric_join_keys_are_invisible() {
        // The NYC (All) failure mode: all queries use numeric keys, the
        // baseline has nothing indexed for them.
        let b = bench(1.0, 6);
        let idx = QcrIndex::build(&b.lake, 256);
        for q in &b.queries {
            assert!(q.numeric_keys);
            let got = idx.query(&q.keys, &q.target, 8, 5);
            assert!(
                got.is_empty(),
                "baseline should not answer numeric-key queries, got {got:?}"
            );
        }
    }

    #[test]
    fn sketch_size_bounded_by_h() {
        let b = bench(0.0, 7);
        let idx = QcrIndex::build(&b.lake, 16);
        assert!(idx.n_sketches() > 0);
        for s in &idx.sketches {
            assert!(s.entries.len() <= 16);
            // Sorted ascending by hash (k-minimum-values invariant).
            assert!(s.entries.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn perfect_correlation_estimates_near_one() {
        // Hand-built: y = x exactly, shared keys.
        use blend_common::{Column, Table, Value};
        let keys: Vec<String> = (0..50).map(|i| format!("key{i}")).collect();
        let t = Table::new(
            blend_common::TableId(0),
            "t",
            vec![
                Column::new(
                    "k",
                    keys.iter()
                        .map(|k| Value::Text(k.clone()))
                        .collect::<Vec<_>>(),
                ),
                Column::new(
                    "y",
                    (0..50).map(|i| Value::Float(i as f64)).collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap();
        let lake = DataLake::new("one", vec![t]);
        let idx = QcrIndex::build(&lake, 64);
        let target: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let got = idx.query(&keys, &target, 1, 5);
        assert_eq!(got.len(), 1);
        assert!(got[0].1 > 0.9, "estimate {} too weak for rho=1", got[0].1);
    }

    #[test]
    fn min_matches_suppresses_tiny_intersections() {
        let b = bench(0.0, 8);
        let idx = QcrIndex::build(&b.lake, 256);
        let q = &b.queries[0];
        // Impossibly high support threshold: nothing qualifies.
        assert!(idx.query(&q.keys, &q.target, 5, 10_000).is_empty());
    }

    #[test]
    fn size_grows_with_column_pairs() {
        let b = bench(0.0, 9);
        let idx = QcrIndex::build(&b.lake, 64);
        assert!(idx.size_bytes() > idx.n_sketches() * 9);
    }
}

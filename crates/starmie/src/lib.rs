//! Starmie (Fan et al., VLDB 2023) — semantics-aware table union search,
//! the baseline of the paper's Table VI and Fig. 7.
//!
//! Pipeline, mirroring the original's filter-and-verify design:
//!
//! 1. **Offline** — encode every lake column into a vector (the original
//!    uses a contrastively trained encoder; we substitute the deterministic
//!    hashing encoder of `blend-embed`, see DESIGN.md §4) and insert the
//!    vectors into an HNSW index.
//! 2. **Filter** — for each query column, retrieve its nearest lake columns
//!    from HNSW; tables owning the hits become candidates.
//! 3. **Verify** — score each candidate exactly: greedy one-to-one
//!    alignment between query and candidate columns by cosine similarity
//!    (Starmie's bipartite "column alignment" verification), averaged over
//!    query columns.

use blend_common::{FxHashMap, FxHashSet, Table, TableId};
use blend_embed::{cosine, Embedder};
use blend_hnsw::{CosineDistance, Hnsw};
use blend_lake::DataLake;

/// Tunables.
#[derive(Debug, Clone)]
pub struct StarmieConfig {
    pub dim: usize,
    pub seed: u64,
    /// HNSW connectivity.
    pub m: usize,
    pub ef_construction: usize,
    pub ef_search: usize,
    /// Columns fetched from HNSW per query column during filtering.
    pub fanout: usize,
}

impl Default for StarmieConfig {
    fn default() -> Self {
        StarmieConfig {
            dim: 64,
            seed: 0x57A2,
            m: 12,
            ef_construction: 80,
            ef_search: 64,
            fanout: 40,
        }
    }
}

/// The Starmie-style index.
pub struct StarmieIndex {
    embedder: Embedder,
    hnsw: Hnsw<Vec<f32>, CosineDistance>,
    /// Point id → (table, column).
    meta: Vec<(u32, u32)>,
    /// Table → its column vectors (for verification).
    table_vectors: Vec<Vec<Vec<f32>>>,
    config: StarmieConfig,
}

/// Extract a column's raw string values.
fn column_strings(table: &Table, col: usize) -> Vec<String> {
    table.columns[col]
        .values
        .iter()
        .filter_map(|v| v.normalized().map(|n| n.into_owned()))
        .collect()
}

impl StarmieIndex {
    /// Build the index over a lake.
    pub fn build(lake: &DataLake, config: StarmieConfig) -> Self {
        let embedder = Embedder::new(config.dim, config.seed);
        let mut hnsw = Hnsw::new(
            CosineDistance,
            config.m,
            config.ef_construction,
            config.seed,
        );
        let mut meta = Vec::new();
        let mut table_vectors = Vec::with_capacity(lake.len());
        for table in &lake.tables {
            let mut vectors = Vec::with_capacity(table.n_cols());
            for c in 0..table.n_cols() {
                let vals = column_strings(table, c);
                let v = embedder.embed_column(&vals);
                hnsw.insert(v.clone());
                meta.push((table.id.0, c as u32));
                vectors.push(v);
            }
            table_vectors.push(vectors);
        }
        StarmieIndex {
            embedder,
            hnsw,
            meta,
            table_vectors,
            config,
        }
    }

    /// Exact unionability score between the query's column vectors and a
    /// candidate table: greedy one-to-one matching by cosine, averaged over
    /// the query columns (unmatched columns contribute zero).
    fn alignment_score(query: &[Vec<f32>], candidate: &[Vec<f32>]) -> f32 {
        if query.is_empty() {
            return 0.0;
        }
        let mut pairs: Vec<(f32, usize, usize)> = Vec::new();
        for (qi, q) in query.iter().enumerate() {
            for (ci, c) in candidate.iter().enumerate() {
                pairs.push((cosine(q, c), qi, ci));
            }
        }
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut used_q = vec![false; query.len()];
        let mut used_c = vec![false; candidate.len()];
        let mut total = 0.0f32;
        for (s, qi, ci) in pairs {
            if !used_q[qi] && !used_c[ci] {
                used_q[qi] = true;
                used_c[ci] = true;
                total += s.max(0.0);
            }
        }
        total / query.len() as f32
    }

    /// Top-k unionable tables for a query table.
    pub fn query(&self, query: &Table, k: usize) -> Vec<(TableId, f32)> {
        let qvecs: Vec<Vec<f32>> = (0..query.n_cols())
            .map(|c| self.embedder.embed_column(&column_strings(query, c)))
            .collect();

        // Filter: candidate tables from per-column ANN retrieval.
        let mut candidates: FxHashSet<u32> = FxHashSet::default();
        for qv in &qvecs {
            for (pid, _) in self
                .hnsw
                .search(qv, self.config.fanout, self.config.ef_search)
            {
                let (t, _) = self.meta[pid as usize];
                // Exclude the query table itself if it happens to be
                // indexed (standard benchmark protocol).
                if t != query.id.0 {
                    candidates.insert(t);
                }
            }
        }

        // Verify: exact alignment score per candidate.
        let mut topk = blend_common::topk::TopK::new(k);
        for t in candidates {
            let score = Self::alignment_score(&qvecs, &self.table_vectors[t as usize]);
            topk.push(score as f64, t as u64, (TableId(t), score));
        }
        topk.into_sorted().into_iter().map(|(_, x)| x).collect()
    }

    /// Estimated resident bytes (Table VIII input): vectors + graph + meta.
    pub fn size_bytes(&self) -> usize {
        let vec_bytes: usize = self
            .table_vectors
            .iter()
            .flat_map(|t| t.iter())
            .map(|v| v.len() * 4 + std::mem::size_of::<Vec<f32>>())
            .sum();
        // Vectors are stored twice (HNSW points + verification store), as
        // in a filter/verify deployment.
        vec_bytes * 2 + self.hnsw.graph_bytes() + self.meta.len() * 8
    }

    /// Number of indexed columns.
    pub fn n_columns(&self) -> usize {
        self.meta.len()
    }
}

/// Convenience: per-query retrieval quality against ground truth, used by
/// the Table VI harness.
pub fn retrieved_tables(hits: &[(TableId, f32)]) -> Vec<TableId> {
    hits.iter().map(|(t, _)| *t).collect()
}

/// Mean of per-table scores keyed by table id (diagnostic helper).
pub fn score_map(hits: &[(TableId, f32)]) -> FxHashMap<TableId, f32> {
    hits.iter().map(|&(t, s)| (t, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_lake::union_bench::{generate, UnionBenchConfig};

    fn bench() -> blend_lake::UnionBenchmark {
        generate(&UnionBenchConfig {
            name: "starmie-test".into(),
            n_clusters: 5,
            tables_per_cluster: 6,
            rows: (10, 20),
            cols: 3,
            domain_size: 60,
            overlap: 0.35,
            confusable_pairs: 1,
            noise_tables: 10,
            seed: 3,
        })
    }

    #[test]
    fn retrieves_cluster_mates_first() {
        let b = bench();
        let idx = StarmieIndex::build(&b.lake, StarmieConfig::default());
        let mut p_at_5 = 0.0;
        for q in &b.queries {
            let hits = idx.query(b.lake.table(*q), 5);
            let gt = &b.ground_truth[q];
            let hit = hits.iter().filter(|(t, _)| gt.contains(t)).count();
            p_at_5 += hit as f64 / 5.0;
        }
        p_at_5 /= b.queries.len() as f64;
        assert!(p_at_5 > 0.7, "Starmie P@5 too low: {p_at_5}");
    }

    #[test]
    fn semantic_similarity_survives_low_overlap() {
        // Cluster mates share domains but only ~35% of values; scores must
        // still clearly separate them from noise tables.
        let b = bench();
        let idx = StarmieIndex::build(&b.lake, StarmieConfig::default());
        let q = b.queries[4]; // non-confusable cluster
        let hits = idx.query(b.lake.table(q), b.lake.len());
        let gt = &b.ground_truth[&q];
        let mate_score: f32 = hits
            .iter()
            .filter(|(t, _)| gt.contains(t))
            .map(|(_, s)| *s)
            .sum::<f32>()
            / gt.len() as f32;
        let noise_scores: Vec<f32> = hits
            .iter()
            .filter(|(t, _)| b.lake.table(*t).name.contains("noise"))
            .map(|(_, s)| *s)
            .collect();
        let noise_best = noise_scores.iter().copied().fold(0.0f32, f32::max);
        assert!(
            mate_score > noise_best,
            "mates {mate_score} vs best noise {noise_best}"
        );
    }

    #[test]
    fn excludes_query_table_itself() {
        let b = bench();
        let idx = StarmieIndex::build(&b.lake, StarmieConfig::default());
        for q in &b.queries {
            let hits = idx.query(b.lake.table(*q), 10);
            assert!(hits.iter().all(|(t, _)| t != q));
        }
    }

    #[test]
    fn alignment_score_bounds() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let same = StarmieIndex::alignment_score(&a, &a);
        assert!((same - 1.0).abs() < 1e-5);
        let disjoint = vec![vec![-1.0, 0.0], vec![0.0, -1.0]];
        let zero = StarmieIndex::alignment_score(&a, &disjoint);
        assert!(zero.abs() < 1e-5, "negative cosines clamp to 0, got {zero}");
        assert_eq!(StarmieIndex::alignment_score(&[], &a), 0.0);
    }

    #[test]
    fn greedy_alignment_is_one_to_one() {
        // Two identical query columns cannot both claim the same candidate
        // column.
        let q = vec![vec![1.0, 0.0], vec![1.0, 0.0]];
        let c = vec![vec![1.0, 0.0]];
        let s = StarmieIndex::alignment_score(&q, &c);
        assert!((s - 0.5).abs() < 1e-5, "expected 0.5, got {s}");
    }

    #[test]
    fn size_accounting() {
        let b = bench();
        let idx = StarmieIndex::build(&b.lake, StarmieConfig::default());
        assert!(idx.size_bytes() > 0);
        assert_eq!(
            idx.n_columns(),
            b.lake.tables.iter().map(Table::n_cols).sum::<usize>()
        );
    }
}

//! DeepJoin (Dong et al., VLDB 2023) — joinable-table discovery with column
//! embeddings, the third system of the paper's Lakebench comparison
//! (Fig. 6).
//!
//! DeepJoin fine-tunes a pretrained language model so that joinable columns
//! embed close together, then answers top-k joinability with an HNSW index
//! — making query latency essentially independent of query column size
//! (the effect Fig. 6a shows). We substitute the deterministic hashing
//! encoder (DESIGN.md §4) and keep the retrieval architecture identical:
//! one vector per lake column, one HNSW search per query.

use blend_common::TableId;
use blend_embed::Embedder;
use blend_hnsw::{CosineDistance, Hnsw};
use blend_lake::DataLake;

/// Tunables.
#[derive(Debug, Clone)]
pub struct DeepJoinConfig {
    pub dim: usize,
    pub seed: u64,
    pub m: usize,
    pub ef_construction: usize,
    pub ef_search: usize,
}

impl Default for DeepJoinConfig {
    fn default() -> Self {
        DeepJoinConfig {
            dim: 64,
            seed: 0xDEE9,
            m: 12,
            ef_construction: 80,
            ef_search: 64,
        }
    }
}

/// The DeepJoin-style index.
pub struct DeepJoinIndex {
    embedder: Embedder,
    hnsw: Hnsw<Vec<f32>, CosineDistance>,
    /// Point id → (table, column).
    meta: Vec<(u32, u32)>,
    config: DeepJoinConfig,
}

impl DeepJoinIndex {
    /// Build over a lake: one embedded point per column.
    pub fn build(lake: &DataLake, config: DeepJoinConfig) -> Self {
        let embedder = Embedder::new(config.dim, config.seed);
        let mut hnsw = Hnsw::new(
            CosineDistance,
            config.m,
            config.ef_construction,
            config.seed,
        );
        let mut meta = Vec::new();
        for table in &lake.tables {
            for (ci, col) in table.columns.iter().enumerate() {
                let vals: Vec<String> = col
                    .values
                    .iter()
                    .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                    .collect();
                hnsw.insert(embedder.embed_column(&vals));
                meta.push((table.id.0, ci as u32));
            }
        }
        DeepJoinIndex {
            embedder,
            hnsw,
            meta,
            config,
        }
    }

    /// Top-k joinable tables for a query column, scored by cosine
    /// similarity of the closest column (1 - HNSW distance).
    pub fn query(&self, column: &[String], k: usize) -> Vec<(TableId, f32)> {
        let qv = self.embedder.embed_column(column);
        // Over-fetch columns: several hits may share a table.
        let hits = self
            .hnsw
            .search(&qv, k * 4 + 8, self.config.ef_search.max(k * 4 + 8));
        let mut best: blend_common::FxHashMap<u32, f32> = Default::default();
        for (pid, d) in hits {
            let (t, _) = self.meta[pid as usize];
            let sim = 1.0 - d;
            let e = best.entry(t).or_insert(f32::MIN);
            if sim > *e {
                *e = sim;
            }
        }
        let mut topk = blend_common::topk::TopK::new(k);
        for (t, s) in best {
            topk.push(s as f64, t as u64, (TableId(t), s));
        }
        topk.into_sorted().into_iter().map(|(_, x)| x).collect()
    }

    /// Number of indexed columns.
    pub fn n_columns(&self) -> usize {
        self.meta.len()
    }

    /// Estimated resident bytes (Table VIII input).
    pub fn size_bytes(&self) -> usize {
        let vec_bytes = self.meta.len() * (self.config.dim * 4 + std::mem::size_of::<Vec<f32>>());
        vec_bytes + self.hnsw.graph_bytes() + self.meta.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_lake::web::{generate, WebLakeConfig};
    use blend_lake::workloads::sc_queries;

    fn lake() -> DataLake {
        generate(&WebLakeConfig {
            name: "dj-test".into(),
            n_tables: 60,
            rows: (10, 30),
            cols: (2, 4),
            vocab: 500,
            zipf_s: 1.0,
            numeric_col_ratio: 0.2,
            null_ratio: 0.0,
            seed: 31,
        })
    }

    #[test]
    fn self_column_query_finds_source_table() {
        let lake = lake();
        let idx = DeepJoinIndex::build(&lake, DeepJoinConfig::default());
        for tid in [0usize, 10, 25] {
            let t = &lake.tables[tid];
            let col: Vec<String> = t.columns[0]
                .values
                .iter()
                .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                .collect();
            let hits = idx.query(&col, 5);
            assert!(
                hits.iter().any(|(tt, _)| tt.0 == tid as u32),
                "table {tid} not in top-5 for its own column: {hits:?}"
            );
        }
    }

    #[test]
    fn scores_sorted_and_bounded() {
        let lake = lake();
        let idx = DeepJoinIndex::build(&lake, DeepJoinConfig::default());
        for (_, qs) in sc_queries(&lake, &[20], 3, 8) {
            for q in qs {
                let hits = idx.query(&q, 10);
                assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
                for (_, s) in hits {
                    assert!((-1.01..=1.01).contains(&s));
                }
            }
        }
    }

    #[test]
    fn respects_k() {
        let lake = lake();
        let idx = DeepJoinIndex::build(&lake, DeepJoinConfig::default());
        let (_, qs) = sc_queries(&lake, &[15], 1, 9).pop().unwrap();
        let hits = idx.query(&qs[0], 3);
        assert!(hits.len() <= 3);
    }

    #[test]
    fn size_accounting() {
        let lake = lake();
        let idx = DeepJoinIndex::build(&lake, DeepJoinConfig::default());
        assert!(idx.size_bytes() >= idx.n_columns() * 64 * 4);
    }
}

//! Minimal offline stub of `criterion`.
//!
//! Provides the `Criterion` / `benchmark_group` / `bench_function` /
//! `Bencher::iter` surface plus the `criterion_group!`/`criterion_main!`
//! macros, backed by a simple wall-clock harness: each benchmark is warmed
//! up, then timed over `sample_size` samples, and the median per-iteration
//! time is printed. No statistics engine, plots, or baselines — enough to
//! compare two code paths on the same machine in the same run.

use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group `{name}`");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), 10, f);
        self
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), self.sample_size, f);
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut b);
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("  {id:<40} median {:>12.3?}/iter", median);
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the closure: a warm-up pass, then `sample_size` timed samples of
    /// a small fixed batch each, recording per-iteration time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        const BATCH: u32 = 3;
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..BATCH {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / BATCH);
        }
    }
}

/// Opaque value barrier (re-exported like criterion's).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from benchmark group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

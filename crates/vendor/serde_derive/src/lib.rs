//! Derive macros for the offline `serde` stub: they emit empty marker-trait
//! impls. No `syn`/`quote` (offline build), so the type name is recovered by
//! scanning the raw token stream for the `struct`/`enum` keyword.

use proc_macro::{TokenStream, TokenTree};

/// Name of the type a derive input defines. Generic types are not supported
/// (nothing in this workspace derives serde on a generic type).
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde_derive stub: could not find a struct/enum name in derive input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

//! Minimal offline stub of `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with an optional `proptest_config` attribute, `Strategy` sampling
//! for ranges / tuples / `any` / collections / options / a small
//! regex-shaped string generator, and the `prop_assert*` / `prop_assume`
//! macros. Cases are sampled from a per-test deterministic seed; there is
//! **no shrinking** — a failing case panics with the sampled inputs left to
//! the assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-case configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` sampled cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

// Strategies are often consumed by combinators by value; boxing is not
// needed in this stub because nothing here is object-safe-dependent.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical full-domain strategy (stub of `Arbitrary`).
pub trait ArbitrarySample: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl ArbitrarySample for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl ArbitrarySample for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl ArbitrarySample for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl ArbitrarySample for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

impl ArbitrarySample for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: ArbitrarySample>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: ArbitrarySample> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::*;

    /// Element-count range for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.random_range(self.size.lo..self.size.hi.max(self.size.lo + 1));
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use super::*;

    /// Strategy producing `Option`s (50% `Some`).
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            if rng.random() {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod string {
    use super::*;

    /// Regex-parse/compile error.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// One parsed regex atom with repetition bounds.
    enum Node {
        /// Literal character.
        Char(char),
        /// Character class alternatives.
        Class(Vec<char>),
        /// Grouped subsequence.
        Group(Vec<Repeated>),
    }

    struct Repeated {
        node: Node,
        min: u32,
        max: u32, // inclusive
    }

    /// Strategy generating strings matching a small regex subset:
    /// literals, `[...]` classes with ranges, `(...)` groups, and the
    /// quantifiers `{m}`, `{m,n}`, `?`, `*`, `+` (star/plus capped at 8).
    pub struct RegexGeneratorStrategy {
        seq: Vec<Repeated>,
    }

    /// Compile `pattern` into a generator strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, false)?;
        if chars.next().is_some() {
            return Err(Error(format!("unbalanced `)` in regex `{pattern}`")));
        }
        Ok(RegexGeneratorStrategy { seq })
    }

    type CharIter<'a> = core::iter::Peekable<core::str::Chars<'a>>;

    fn parse_seq(chars: &mut CharIter<'_>, in_group: bool) -> Result<Vec<Repeated>, Error> {
        let mut seq = Vec::new();
        while let Some(&c) = chars.peek() {
            let node = match c {
                ')' if in_group => break,
                '(' => {
                    chars.next();
                    let inner = parse_seq(chars, true)?;
                    match chars.next() {
                        Some(')') => Node::Group(inner),
                        _ => return Err(Error("missing `)`".into())),
                    }
                }
                '[' => {
                    chars.next();
                    Node::Class(parse_class(chars)?)
                }
                '\\' => {
                    chars.next();
                    let escaped = chars.next().ok_or_else(|| Error("dangling `\\`".into()))?;
                    Node::Char(escaped)
                }
                _ => {
                    chars.next();
                    Node::Char(c)
                }
            };
            let (min, max) = parse_quantifier(chars)?;
            seq.push(Repeated { node, min, max });
        }
        Ok(seq)
    }

    fn parse_class(chars: &mut CharIter<'_>) -> Result<Vec<char>, Error> {
        let mut out = Vec::new();
        loop {
            let c = chars.next().ok_or_else(|| Error("missing `]`".into()))?;
            match c {
                ']' => return Ok(out),
                _ => {
                    if chars.peek() == Some(&'-') {
                        let mut lookahead = chars.clone();
                        lookahead.next(); // consume '-'
                        match lookahead.peek() {
                            Some(&hi) if hi != ']' => {
                                chars.next();
                                chars.next();
                                for ch in c..=hi {
                                    out.push(ch);
                                }
                                continue;
                            }
                            _ => {}
                        }
                    }
                    out.push(c);
                }
            }
        }
    }

    fn parse_quantifier(chars: &mut CharIter<'_>) -> Result<(u32, u32), Error> {
        match chars.peek() {
            Some('?') => {
                chars.next();
                Ok((0, 1))
            }
            Some('*') => {
                chars.next();
                Ok((0, 8))
            }
            Some('+') => {
                chars.next();
                Ok((1, 8))
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => return Err(Error("missing `}`".into())),
                    }
                }
                let parse = |s: &str| {
                    s.trim()
                        .parse::<u32>()
                        .map_err(|_| Error(format!("bad repeat bound `{s}`")))
                };
                match spec.split_once(',') {
                    Some((lo, hi)) => Ok((parse(lo)?, parse(hi)?)),
                    None => {
                        let n = parse(&spec)?;
                        Ok((n, n))
                    }
                }
            }
            _ => Ok((1, 1)),
        }
    }

    fn generate(seq: &[Repeated], rng: &mut StdRng, out: &mut String) {
        for rep in seq {
            let n = rng.random_range(rep.min..=rep.max);
            for _ in 0..n {
                match &rep.node {
                    Node::Char(c) => out.push(*c),
                    Node::Class(choices) => {
                        out.push(choices[rng.random_range(0..choices.len())]);
                    }
                    Node::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            generate(&self.seq, rng, &mut out);
            out
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so different
/// tests explore different streams, reproducibly.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Declare property tests: each `arg in strategy` is sampled fresh per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            // Strategies are built once; each case samples fresh values
            // that shadow the strategy bindings inside the closure.
            let ($($arg,)*) = ($($strat,)*);
            for __case in 0..__cfg.cases {
                let ($($arg,)*) = ($($crate::Strategy::sample(&$arg, &mut __rng),)*);
                let __run = || { $body };
                __run();
                let _ = __case;
            }
        }
    )*};
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Discard the current case when an assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_generator_matches_shape() {
        let strat = crate::string::string_regex("[a-z0-9]{1,12}( [a-z0-9]{1,8})?").unwrap();
        let mut rng = crate::test_rng("regex_generator_matches_shape");
        for _ in 0..500 {
            let s = crate::Strategy::sample(&strat, &mut rng);
            assert!(!s.is_empty());
            let parts: Vec<&str> = s.split(' ').collect();
            assert!(parts.len() <= 2, "{s:?}");
            assert!(parts[0].len() <= 12);
            for p in parts {
                assert!(
                    p.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                    "{s:?}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample(
            a in 0u32..10,
            pair in (1usize..4, crate::option::of(any::<bool>())),
            v in crate::collection::vec(0i64..100, 2..5),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&pair.0));
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(v.iter().filter(|x| **x >= 100).count(), 0);
        }
    }
}

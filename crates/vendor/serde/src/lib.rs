//! Minimal offline stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few value types but
//! never drives an actual serialization backend (persistence uses its own
//! binary format in `blend-index`). With no network access to crates.io,
//! this stub keeps those derives compiling: the traits are empty markers and
//! the derive macros emit empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

//! Minimal offline stub of `crossbeam`: the `thread::scope` API mapped onto
//! `std::thread::scope` (stable since Rust 1.63). Spawned closures receive a
//! `&Scope` like crossbeam's, so call sites compile unchanged.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to `scope` and to each spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result (Err on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives this scope, matching
        /// crossbeam's signature (most callers ignore it with `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Always `Ok` — a panicking unjoined child propagates its
    /// panic (std semantics) rather than surfacing here.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u32, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| scope.spawn(move |_| chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}

//! Minimal offline stub of the `bytes` crate.
//!
//! Implements exactly the little-endian frame I/O surface `blend-index`'s
//! persistence layer uses: `BytesMut` as a growable write buffer, `Bytes` as
//! an immutable byte container, and the `Buf` cursor trait over `&[u8]`.
//! No reference counting or zero-copy slicing — buffers are plain `Vec`s.

use std::ops::Deref;

/// Immutable byte buffer (plain owned bytes in this stub).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Owned `Vec<u8>` copy.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer with little-endian put helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait (subset).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Read-side cursor trait (subset). Implemented for `&[u8]`, advancing the
/// slice in place exactly like the real crate.
pub trait Buf {
    fn remaining(&self) -> usize;

    fn chunk(&self) -> &[u8];

    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"HDR!");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_u128_le(u128::MAX - 1);
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 4];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_u128_le(), u128::MAX - 1);
        assert!(!r.has_remaining());
    }

    #[test]
    fn copy_to_bytes_advances() {
        let src = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &src;
        let head = r.copy_to_bytes(2);
        assert_eq!(&*head, &[1, 2]);
        assert_eq!(r.remaining(), 3);
    }
}

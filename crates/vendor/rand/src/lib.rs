//! Minimal offline stub of the `rand` crate (0.9-style API surface).
//!
//! The build container has no network access, so the workspace vendors the
//! small subset of `rand` it actually uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, the `Rng` convenience methods
//! (`random`, `random_range`, `random_bool`) and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! solid for synthetic-data generation and property tests. It is NOT
//! cryptographically secure, which matches how the workspace uses it.

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an RNG's output stream.
pub trait FromRng: Sized {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self;
}

impl FromRng for u64 {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl FromRng for u32 {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        next() as usize
    }
}

impl FromRng for i64 {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        next() as i64
    }
}

impl FromRng for bool {
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn from_rng(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of their element type.
pub trait SampleRange<T> {
    fn sample_from(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (next() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (next() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_impls!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as FromRng>::from_rng(next);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let unit = <$t as FromRng>::from_rng(next);
                start + unit * (end - start)
            }
        }
    )*};
}
float_range_impls!(f32, f64);

/// High-level sampling helpers, available on every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample of `T` over its full domain ([0,1) for floats).
    fn random<T: FromRng>(&mut self) -> T {
        let mut next = || self.next_u64();
        T::from_rng(&mut next)
    }

    /// Uniform sample from a range. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut next = || self.next_u64();
        range.sample_from(&mut next)
    }

    /// Bernoulli trial with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates), matching rand's `SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}

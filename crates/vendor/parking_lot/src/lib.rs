//! Minimal offline stub of `parking_lot`: the non-poisoning `RwLock`/`Mutex`
//! API backed by `std::sync`. A poisoned std lock (panicking writer) is
//! recovered with `into_inner`, matching parking_lot's "no poisoning"
//! semantics closely enough for this workspace.

/// Non-poisoning reader–writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 5;
        assert_eq!(*lock.read(), 5);
        assert_eq!(lock.into_inner(), 5);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}

//! JOSIE (Zhu et al., SIGMOD 2019) — overlap set similarity search for
//! joinable-table discovery.
//!
//! The baseline of the paper's single-column join experiments (Fig. 5/6).
//! JOSIE models every lake column as a *set* of distinct tokens and answers
//! "top-k sets by overlap with query set Q" using an inverted index from
//! token to set ids.
//!
//! This implementation keeps JOSIE's two essential ideas:
//!
//! 1. **Frequency-ordered probing** — query tokens are processed from
//!    rarest to most frequent, so candidate discovery happens on the cheap
//!    posting lists first;
//! 2. **Top-k upper-bound pruning** — after `i` tokens, an unseen set can
//!    reach overlap at most `|Q| - i`; once the running k-th best overlap
//!    meets that bound, *no new candidates* are admitted and the remaining
//!    (longest) posting lists are only used to finish counting existing
//!    candidates — the posting-list/candidate cost trade-off at the heart
//!    of the original's cost model, in its simplest effective form.
//!
//! Results are exact (pruning only skips work that cannot change the
//! outcome), which the tests verify against the brute-force oracle.

use blend_common::{FxHashMap, TableId};
use blend_lake::DataLake;

/// One indexed set: a lake column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetRef {
    pub table: u32,
    pub column: u32,
    /// Distinct-token count of the set (for containment metrics).
    pub size: u32,
}

/// A search hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JosieHit {
    pub set: SetRef,
    pub overlap: u32,
}

/// The JOSIE index.
pub struct JosieIndex {
    /// Token dictionary.
    dict: FxHashMap<Box<str>, u32>,
    /// Postings: token id → sorted set ids.
    postings: Vec<Vec<u32>>,
    /// Set directory.
    sets: Vec<SetRef>,
    token_bytes: usize,
}

impl JosieIndex {
    /// Build from a lake: one set per column, distinct normalized values.
    pub fn build(lake: &DataLake) -> Self {
        let mut dict: FxHashMap<Box<str>, u32> = FxHashMap::default();
        let mut postings: Vec<Vec<u32>> = Vec::new();
        let mut sets: Vec<SetRef> = Vec::new();
        let mut token_bytes = 0usize;

        for table in &lake.tables {
            for (ci, col) in table.columns.iter().enumerate() {
                let set_id = sets.len() as u32;
                let mut distinct: Vec<u32> = col
                    .values
                    .iter()
                    .filter_map(|v| v.normalized())
                    .map(|norm| match dict.get(norm.as_ref()) {
                        Some(&t) => t,
                        None => {
                            let t = postings.len() as u32;
                            token_bytes += norm.len();
                            dict.insert(norm.as_ref().into(), t);
                            postings.push(Vec::new());
                            t
                        }
                    })
                    .collect();
                distinct.sort_unstable();
                distinct.dedup();
                for &t in &distinct {
                    postings[t as usize].push(set_id);
                }
                sets.push(SetRef {
                    table: table.id.0,
                    column: ci as u32,
                    size: distinct.len() as u32,
                });
            }
        }
        JosieIndex {
            dict,
            postings,
            sets,
            token_bytes,
        }
    }

    /// Number of indexed sets.
    pub fn n_sets(&self) -> usize {
        self.sets.len()
    }

    /// Top-k *sets* by overlap with the query tokens.
    pub fn query_sets(&self, query: &[String], k: usize) -> Vec<JosieHit> {
        // Map to token ids; unknown tokens can never match.
        let mut toks: Vec<u32> = query
            .iter()
            .filter_map(|v| self.dict.get(v.as_str()).copied())
            .collect();
        toks.sort_unstable();
        toks.dedup();
        // Rarest-first ordering.
        toks.sort_by_key(|&t| self.postings[t as usize].len());

        let mut counts: FxHashMap<u32, u32> = FxHashMap::default();
        let mut topk = blend_common::topk::TopK::new(k);
        let mut frozen = false;

        for (i, &t) in toks.iter().enumerate() {
            let remaining = (toks.len() - i) as u32;
            if !frozen {
                if let Some(thresh) = kth_count(&counts, k) {
                    // Strict inequality: an unseen set could still *tie* at
                    // exactly `remaining` and win the deterministic id
                    // tiebreak, so freezing at equality would be lossy.
                    if thresh > remaining {
                        frozen = true;
                    }
                }
            }
            for &s in &self.postings[t as usize] {
                match counts.get_mut(&s) {
                    Some(c) => *c += 1,
                    None if !frozen => {
                        counts.insert(s, 1);
                    }
                    None => {}
                }
            }
        }

        for (s, c) in counts {
            // Tiebreak by set id for determinism.
            topk.push(
                c as f64,
                s as u64,
                JosieHit {
                    set: self.sets[s as usize],
                    overlap: c,
                },
            );
        }
        topk.into_sorted().into_iter().map(|(_, h)| h).collect()
    }

    /// Top-k *tables* by their best column overlap (the granularity the
    /// paper's experiments report). Internally over-fetches sets because
    /// several top sets can belong to one table.
    pub fn query(&self, query: &[String], k: usize) -> Vec<(TableId, u32)> {
        let hits = self.query_sets(query, k.saturating_mul(12).max(k + 32));
        let mut best: FxHashMap<u32, u32> = FxHashMap::default();
        let mut order: Vec<u32> = Vec::new();
        for h in hits {
            let e = best.entry(h.set.table).or_insert_with(|| {
                order.push(h.set.table);
                0
            });
            *e = (*e).max(h.overlap);
        }
        let mut topk = blend_common::topk::TopK::new(k);
        for t in order {
            topk.push(best[&t] as f64, t as u64, (TableId(t), best[&t]));
        }
        topk.into_sorted().into_iter().map(|(_, x)| x).collect()
    }

    /// Estimated resident bytes (Table VIII input): dictionary strings,
    /// posting lists, set directory.
    pub fn size_bytes(&self) -> usize {
        let dict_bytes = self.token_bytes + self.dict.len() * 24;
        let postings_bytes: usize = self
            .postings
            .iter()
            .map(|p| p.len() * 4 + std::mem::size_of::<Vec<u32>>())
            .sum();
        let set_bytes = self.sets.len() * std::mem::size_of::<SetRef>();
        dict_bytes + postings_bytes + set_bytes
    }
}

fn kth_count(counts: &FxHashMap<u32, u32>, k: usize) -> Option<u32> {
    if counts.len() < k {
        return None;
    }
    // Exact k-th largest; candidate maps are small in practice.
    let mut v: Vec<u32> = counts.values().copied().collect();
    v.sort_unstable_by(|a, b| b.cmp(a));
    v.get(k - 1).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_lake::ground_truth::exact_sc_topk;
    use blend_lake::web::{generate, WebLakeConfig};
    use blend_lake::workloads::sc_queries;

    fn lake() -> DataLake {
        generate(&WebLakeConfig {
            name: "josie-test".into(),
            n_tables: 80,
            rows: (10, 40),
            cols: (2, 5),
            vocab: 600,
            zipf_s: 1.0,
            numeric_col_ratio: 0.2,
            null_ratio: 0.05,
            seed: 77,
        })
    }

    #[test]
    fn matches_brute_force_overlaps() {
        let lake = lake();
        let idx = JosieIndex::build(&lake);
        for (_, queries) in sc_queries(&lake, &[5, 30], 4, 9) {
            for q in queries {
                let got = idx.query(&q, 10);
                let want = exact_sc_topk(&lake, &q, 10);
                // Overlap sequences must match exactly (identical ranking up
                // to ties, which both sides break by table id).
                let got_scores: Vec<u32> = got.iter().map(|(_, o)| *o).collect();
                let want_scores: Vec<u32> = want.iter().map(|(_, o)| *o as u32).collect();
                assert_eq!(got_scores, want_scores, "query {q:?}");
                for ((gt, go), (wt, wo)) in got.iter().zip(&want) {
                    assert_eq!(go, &(*wo as u32));
                    assert_eq!(gt, wt);
                }
            }
        }
    }

    #[test]
    fn unknown_tokens_are_ignored() {
        let lake = lake();
        let idx = JosieIndex::build(&lake);
        let q = vec!["definitely-not-in-the-lake".to_string()];
        assert!(idx.query(&q, 5).is_empty());
    }

    #[test]
    fn set_granularity_counts_distinct() {
        let lake = lake();
        let idx = JosieIndex::build(&lake);
        // A query equal to one full column must find that column with
        // overlap = its distinct size.
        let t = &lake.tables[3];
        let col = &t.columns[0];
        let mut q: Vec<String> = col
            .values
            .iter()
            .filter_map(|v| v.normalized().map(|c| c.into_owned()))
            .collect();
        q.sort_unstable();
        q.dedup();
        let hits = idx.query_sets(&q, 5);
        let own = hits
            .iter()
            .find(|h| h.set.table == t.id.0 && h.set.column == 0)
            .expect("own column found");
        assert_eq!(own.overlap, own.set.size);
        assert_eq!(own.overlap as usize, q.len());
    }

    #[test]
    fn pruning_never_loses_results() {
        // Stress the frozen-path: tiny k against broad queries.
        let lake = lake();
        let idx = JosieIndex::build(&lake);
        for (_, queries) in sc_queries(&lake, &[80], 3, 21) {
            for q in queries {
                let got = idx.query(&q, 3);
                let want = exact_sc_topk(&lake, &q, 3);
                assert_eq!(
                    got.iter().map(|(_, o)| *o).collect::<Vec<_>>(),
                    want.iter().map(|(_, o)| *o as u32).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn size_accounting_positive_and_scales() {
        let lake = lake();
        let idx = JosieIndex::build(&lake);
        assert!(idx.size_bytes() > 0);
        assert!(idx.n_sets() > 0);
    }
}

//! Offline indexing (paper Fig. 2e): turning a data lake into `AllTables`
//! rows.
//!
//! Three structures are fused into the single fact table (paper Section V):
//!
//! 1. the DataXFormer-style **inverted index** — one row per non-null cell
//!    with its `(TableId, ColumnId, RowId)` location;
//! 2. MATE's **XASH super key** ([`xash`]) — a 128-bit bloom-style aggregate
//!    of each *row's* values, enabling multi-column alignment checks without
//!    touching the raw tables;
//! 3. the reformulated **QCR quadrant bit** ([`quadrant`]) — one boolean per
//!    numeric cell (`value >= column mean`), turning correlation estimation
//!    into SQL aggregation.
//!
//! [`builder::IndexBuilder`] runs the pipeline, optionally in parallel
//! (the shared `blend-parallel` worker pool, tables bin-packed across
//! workers by cell count) and optionally with
//! *pre-shuffled row order* — the "BLEND (rand)" configuration of Table VII,
//! which converts the correlation seeker's `RowId < h` convenience sample
//! into a random sample.

pub mod builder;
pub mod persist;
pub mod quadrant;
pub mod xash;

pub use builder::{IndexBuilder, IndexOptions};
pub use persist::{load_rows, save_rows};
pub use xash::{xash_value, Xash};

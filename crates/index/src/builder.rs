//! The `AllTables` builder: lake tables → fact rows → storage engine.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use blend_common::{Table, Value};
use blend_storage::{build_engine, EngineKind, FactRow, FactTable};

use crate::quadrant::column_quadrants;
use crate::xash::Xash;

/// Index-build metric cells (`blend_index_*`), resolved once per process.
struct IndexMetrics {
    /// Lake tables indexed (cumulative across builds).
    tables: Arc<blend_obs::Counter>,
    /// Fact rows emitted (cumulative across builds).
    rows: Arc<blend_obs::Counter>,
    /// Wall time of whole-lake builds ([`IndexBuilder::index_lake`]).
    build_nanos: Arc<blend_obs::Histogram>,
}

fn index_metrics() -> &'static IndexMetrics {
    static METRICS: OnceLock<IndexMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = blend_obs::registry();
        IndexMetrics {
            tables: r.counter("blend_index_tables_total"),
            rows: r.counter("blend_index_fact_rows_total"),
            build_nanos: r.histogram("blend_index_build_nanos"),
        }
    })
}

/// Indexing configuration.
#[derive(Debug, Clone)]
pub struct IndexOptions {
    /// Shuffle each table's rows before assigning `RowId`s. This is the
    /// "BLEND (rand)" configuration (Table VII): the correlation seeker's
    /// `RowId < h` convenience sample becomes a uniform random sample
    /// without any query-time machinery.
    pub shuffle_rows: bool,
    /// Seed for the shuffle.
    pub seed: u64,
    /// Number of worker threads for the parallel build (1 = sequential).
    pub threads: usize,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            shuffle_rows: false,
            seed: 0x51ED,
            threads: 4,
        }
    }
}

/// Builds `AllTables` from lake tables.
pub struct IndexBuilder {
    options: IndexOptions,
}

impl IndexBuilder {
    /// Builder with default options.
    pub fn new() -> Self {
        IndexBuilder {
            options: IndexOptions::default(),
        }
    }

    /// Builder with explicit options.
    pub fn with_options(options: IndexOptions) -> Self {
        IndexBuilder { options }
    }

    /// Index one table into fact rows.
    ///
    /// Per row: compute the XASH super key over all non-null normalized
    /// values; per cell: emit `(value, tid, cid, rid, superkey, quadrant)`.
    pub fn index_table(&self, table: &Table) -> Vec<FactRow> {
        let n_rows = table.n_rows();
        let n_cols = table.n_cols();

        // Row order: identity or shuffled (per-table deterministic seed).
        let mut order: Vec<usize> = (0..n_rows).collect();
        if self.options.shuffle_rows {
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                self.options.seed ^ (table.id.0 as u64).wrapping_mul(0x9E37_79B9),
            );
            order.shuffle(&mut rng);
        }

        // Pre-normalize cells column-major and compute quadrant bits.
        let mut normalized: Vec<Vec<Option<String>>> = Vec::with_capacity(n_cols);
        let mut quadrants = Vec::with_capacity(n_cols);
        for col in &table.columns {
            normalized.push(
                col.values
                    .iter()
                    .map(|v: &Value| v.normalized().map(|c| c.into_owned()))
                    .collect(),
            );
            quadrants.push(column_quadrants(col));
        }

        // Super keys per physical row.
        let mut superkeys = vec![0u128; n_rows];
        for (r, sk) in superkeys.iter_mut().enumerate() {
            let mut x = Xash::new();
            for col in normalized.iter() {
                if let Some(v) = &col[r] {
                    x.add(v);
                }
            }
            *sk = x.finish();
        }

        let mut rows = Vec::with_capacity(n_rows * n_cols);
        for (new_rid, &orig_r) in order.iter().enumerate() {
            for c in 0..n_cols {
                if let Some(v) = &normalized[c][orig_r] {
                    rows.push(FactRow::new(
                        v,
                        table.id.0,
                        c as u32,
                        new_rid as u32,
                        superkeys[orig_r],
                        quadrants[c].bits[orig_r],
                    ));
                }
            }
        }
        rows
    }

    /// Index a whole lake into fact rows, in parallel across tables.
    ///
    /// Tables are assigned to workers by greedy size-aware chunking
    /// ([`blend_parallel::balanced_chunks`], weighted by cell count), so
    /// one huge table no longer serializes the build the way the old
    /// static `i % threads` striping did — the giant gets a bin of its
    /// own while the remaining workers share everything else. Output is
    /// reassembled in input-table order, making the result identical at
    /// every thread count.
    pub fn index_lake(&self, tables: &[Table]) -> Vec<FactRow> {
        let span = blend_obs::span("index.build");
        span.attr_u64("tables", tables.len() as u64);
        let t0 = Instant::now();
        let all = self.index_lake_inner(tables);
        let m = index_metrics();
        m.tables.add(tables.len() as u64);
        m.rows.add(all.len() as u64);
        m.build_nanos.record(t0.elapsed().as_nanos() as u64);
        span.attr_u64("rows", all.len() as u64);
        all
    }

    fn index_lake_inner(&self, tables: &[Table]) -> Vec<FactRow> {
        let threads = self.options.threads.max(1);
        if threads == 1 || tables.len() < 2 {
            let mut all = Vec::new();
            for t in tables {
                all.extend(self.index_table(t));
            }
            return all;
        }

        let weights: Vec<usize> = tables.iter().map(|t| t.n_rows() * t.n_cols()).collect();
        let bins: Vec<Vec<usize>> = blend_parallel::balanced_chunks(&weights, threads)
            .into_iter()
            .filter(|bin| !bin.is_empty())
            .collect();

        // Ride the process-global persistent pool (capped at this build's
        // thread budget) instead of spawning a dedicated pool per build —
        // index builds and query serving share one worker set.
        let pool = blend_parallel::WorkerPool::shared(threads);
        let run = pool.run(bins.len(), |b| {
            bins[b]
                .iter()
                .map(|&ti| (ti, self.index_table(&tables[ti])))
                .collect::<Vec<(usize, Vec<FactRow>)>>()
        });

        let mut per_table: Vec<Vec<FactRow>> = vec![Vec::new(); tables.len()];
        for bin in run.results {
            for (ti, rows) in bin {
                per_table[ti] = rows;
            }
        }
        let total: usize = per_table.iter().map(Vec::len).sum();
        let mut all = Vec::with_capacity(total);
        for rows in per_table {
            all.extend(rows);
        }
        all
    }

    /// Index a lake directly into a storage engine.
    ///
    /// Every build advances the process-wide store generation
    /// ([`blend_storage::bump_store_generation`]): a rebuild produces a new
    /// `AllTables`, so any result memoized against the previous generation
    /// must stop matching the moment the new table can be installed.
    pub fn build(&self, tables: &[Table], kind: EngineKind) -> Arc<dyn FactTable> {
        let fact = build_engine(kind, self.index_lake(tables));
        blend_storage::bump_store_generation();
        fact
    }
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::{Column, TableId};

    fn staff_table(id: u32) -> Table {
        Table::new(
            TableId(id),
            format!("staff-{id}"),
            vec![
                Column::new(
                    "lead",
                    vec![
                        Value::Text("Tom Riddle".into()),
                        Value::Text("Firenze".into()),
                        Value::Null,
                    ],
                ),
                Column::new(
                    "year",
                    vec![Value::Int(2022), Value::Int(2024), Value::Int(2023)],
                ),
                Column::new(
                    "team",
                    vec![
                        Value::Text("IT".into()),
                        Value::Text("HR".into()),
                        Value::Text("Sales".into()),
                    ],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn emits_one_row_per_non_null_cell() {
        let t = staff_table(0);
        let rows = IndexBuilder::new().index_table(&t);
        assert_eq!(rows.len(), t.non_null_cells());
        // Values are normalized.
        assert!(rows.iter().any(|r| &*r.value == "tom riddle"));
        assert!(!rows.iter().any(|r| &*r.value == "Tom Riddle"));
    }

    #[test]
    fn superkey_consistent_within_row_and_contains_values() {
        let t = staff_table(0);
        let rows = IndexBuilder::new().index_table(&t);
        // All cells of row 0 share one superkey.
        let row0: Vec<&FactRow> = rows.iter().filter(|r| r.row == 0).collect();
        assert!(row0.len() >= 2);
        let sk = row0[0].superkey;
        assert!(row0.iter().all(|r| r.superkey == sk));
        for r in &row0 {
            assert!(Xash::may_contain(sk, &r.value));
        }
    }

    #[test]
    fn quadrants_only_on_numeric_columns() {
        let t = staff_table(0);
        let rows = IndexBuilder::new().index_table(&t);
        for r in &rows {
            let numeric = r.column == 1; // "year"
            assert_eq!(r.quadrant.is_some(), numeric, "{r:?}");
        }
        // year mean = 2023: 2022 -> 0, 2024 -> 1, 2023 -> 1 (>=).
        let year_bits: Vec<Option<bool>> = rows
            .iter()
            .filter(|r| r.column == 1)
            .map(|r| r.quadrant)
            .collect();
        assert_eq!(year_bits.iter().filter(|b| **b == Some(true)).count(), 2);
    }

    #[test]
    fn shuffle_permutes_rowids_but_preserves_alignment() {
        let t = staff_table(0);
        let opts = IndexOptions {
            shuffle_rows: true,
            seed: 7,
            threads: 1,
        };
        let rows = IndexBuilder::with_options(opts).index_table(&t);
        assert_eq!(rows.len(), t.non_null_cells());
        // Alignment: for each RowId, lead/team values must come from the
        // same original row (checked through the superkey).
        for rid in 0..3u32 {
            let cells: Vec<&FactRow> = rows.iter().filter(|r| r.row == rid).collect();
            if cells.len() < 2 {
                continue;
            }
            let sk = cells[0].superkey;
            assert!(cells.iter().all(|c| c.superkey == sk));
            for c in &cells {
                assert!(Xash::may_contain(sk, &c.value));
            }
        }
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let t = staff_table(0);
        let mk = |seed| {
            IndexBuilder::with_options(IndexOptions {
                shuffle_rows: true,
                seed,
                threads: 1,
            })
            .index_table(&t)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Output is reassembled in input-table order, so raw fact rows —
        // not just the canonical-sorted engines — must be identical at
        // every thread count.
        let tables: Vec<Table> = (0..9).map(staff_table).collect();
        let build = |threads| {
            IndexBuilder::with_options(IndexOptions {
                threads,
                ..Default::default()
            })
            .index_lake(&tables)
        };
        let seq = build(1);
        for threads in [2, 4, 8, 16] {
            assert_eq!(seq, build(threads), "threads={threads}");
        }
    }

    #[test]
    fn skewed_lakes_build_identically() {
        // One giant table plus many small ones: greedy size-aware chunking
        // must still cover every table exactly once, in input order.
        let mut big_cols = Vec::new();
        for c in 0..4 {
            let vals: Vec<Value> = (0..200)
                .map(|r| Value::Int((c * 1000 + r) as i64))
                .collect();
            big_cols.push(Column::new(format!("c{c}"), vals));
        }
        let mut tables = vec![Table::new(TableId(0), "giant", big_cols).unwrap()];
        tables.extend((1..8).map(staff_table));
        let build = |threads| {
            IndexBuilder::with_options(IndexOptions {
                threads,
                ..Default::default()
            })
            .index_lake(&tables)
        };
        let seq = build(1);
        assert_eq!(
            seq.len(),
            tables.iter().map(|t| t.non_null_cells()).sum::<usize>()
        );
        for threads in [2, 4] {
            assert_eq!(seq, build(threads), "threads={threads}");
        }
    }

    #[test]
    fn build_into_engine_registers_all_tables() {
        let tables: Vec<Table> = (0..3).map(staff_table).collect();
        let ft = IndexBuilder::new().build(&tables, EngineKind::Row);
        assert_eq!(ft.n_tables(), 3);
        assert_eq!(ft.postings("firenze").len(), 3);
    }
}

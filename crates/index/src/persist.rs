//! Binary persistence for the offline index.
//!
//! Indexing a lake is the expensive offline step (the paper reports 2–80
//! hours on its corpora); a deployment builds `AllTables` once and reloads
//! it at startup. The format is a versioned little-endian frame stream:
//!
//! ```text
//! magic "BLND" | u32 version | u64 row count | rows...
//! row: u32 value_len | value bytes | u32 table | u32 column | u32 row
//!      | u128 superkey | u8 quadrant code
//! ```

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use blend_common::{BlendError, Result};
use blend_storage::{decode_quadrant, FactRow};

const MAGIC: &[u8; 4] = b"BLND";
const VERSION: u32 = 1;

/// Serialize fact rows into a byte buffer.
pub fn encode_rows(rows: &[FactRow]) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + rows.len() * 48);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(rows.len() as u64);
    for r in rows {
        buf.put_u32_le(r.value.len() as u32);
        buf.put_slice(r.value.as_bytes());
        buf.put_u32_le(r.table);
        buf.put_u32_le(r.column);
        buf.put_u32_le(r.row);
        buf.put_u128_le(r.superkey);
        buf.put_u8(r.quadrant_code());
    }
    buf.freeze()
}

/// Deserialize fact rows from a byte buffer.
pub fn decode_rows(mut buf: &[u8]) -> Result<Vec<FactRow>> {
    let err = |m: &str| BlendError::Index(format!("index file corrupt: {m}"));
    if buf.remaining() < 16 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(BlendError::Index(format!(
            "unsupported index version {version} (expected {VERSION})"
        )));
    }
    let n = buf.get_u64_le() as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        if buf.remaining() < 4 {
            return Err(err("truncated value length"));
        }
        let len = buf.get_u32_le() as usize;
        if buf.remaining() < len + 4 * 3 + 16 + 1 {
            return Err(err("truncated row"));
        }
        let value_bytes = buf.copy_to_bytes(len);
        let value = std::str::from_utf8(&value_bytes)
            .map_err(|_| err("non-UTF8 value"))?
            .to_string();
        let table = buf.get_u32_le();
        let column = buf.get_u32_le();
        let row = buf.get_u32_le();
        let superkey = buf.get_u128_le();
        let quadrant = decode_quadrant(buf.get_u8());
        rows.push(FactRow {
            value: value.into(),
            table,
            column,
            row,
            superkey,
            quadrant,
        });
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes"));
    }
    Ok(rows)
}

/// Write fact rows to a file.
pub fn save_rows(path: &Path, rows: &[FactRow]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&encode_rows(rows))?;
    w.flush()?;
    Ok(())
}

/// Read fact rows from a file.
pub fn load_rows(path: &Path) -> Result<Vec<FactRow>> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    decode_rows(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<FactRow> {
        vec![
            FactRow::new("alpha", 0, 0, 0, 0xDEAD_BEEF, None),
            FactRow::new("universität 42", 1, 2, 3, u128::MAX, Some(true)),
            FactRow::new("", 2, 0, 0, 0, Some(false)),
        ]
    }

    #[test]
    fn roundtrip_in_memory() {
        let rows = sample();
        let encoded = encode_rows(&rows);
        let decoded = decode_rows(&encoded).unwrap();
        assert_eq!(rows, decoded);
    }

    #[test]
    fn roundtrip_through_file() {
        let rows = sample();
        let dir = std::env::temp_dir().join("blend-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.blnd");
        save_rows(&path, &rows).unwrap();
        let decoded = load_rows(&path).unwrap();
        assert_eq!(rows, decoded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_index_roundtrips() {
        let encoded = encode_rows(&[]);
        assert_eq!(decode_rows(&encoded).unwrap(), Vec::<FactRow>::new());
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut encoded = encode_rows(&sample()).to_vec();
        encoded[0] = b'X';
        assert!(decode_rows(&encoded).is_err());

        let mut encoded = encode_rows(&sample()).to_vec();
        encoded[4] = 99; // version
        let err = decode_rows(&encoded).unwrap_err().to_string();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let encoded = encode_rows(&sample());
        for cut in [1, 8, 17, encoded.len() - 1] {
            assert!(
                decode_rows(&encoded[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut encoded = encode_rows(&sample()).to_vec();
        encoded.push(0);
        assert!(decode_rows(&encoded).is_err());
    }

    #[test]
    fn rebuilt_engine_matches_original() {
        // The property that matters: a reloaded index serves identical
        // postings.
        use blend_storage::{build_engine, EngineKind};
        let rows = sample();
        let reloaded = decode_rows(&encode_rows(&rows)).unwrap();
        let a = build_engine(EngineKind::Column, rows);
        let b = build_engine(EngineKind::Column, reloaded);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.postings("alpha"), b.postings("alpha"));
    }
}

//! QCR quadrant bits (paper Section V).
//!
//! For every *numeric* column the indexer stores, per cell, one boolean:
//! `1` if the value is greater than or equal to the column average, `0`
//! otherwise; non-numeric cells store SQL NULL. With both the join side and
//! the target side reduced to booleans, the Quadrant Count Ratio becomes a
//! SQL `SUM(...)/COUNT(*)` (Listing 3) — no application-level correlation
//! code and, unlike the original QCR index, no quadratic column-pair
//! enumeration.

use blend_common::{Column, ColumnType};

/// Per-column quadrant assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnQuadrants {
    /// `None` for non-numeric columns (all cells NULL).
    pub mean: Option<f64>,
    /// One entry per row: `None` = NULL.
    pub bits: Vec<Option<bool>>,
}

/// Compute quadrant bits for one column.
///
/// A column participates only when its inferred type is numeric; numeric
/// *cells* inside categorical columns stay NULL, matching the paper's
/// column-typed treatment (the correlation seeker joins categorical keys
/// against numeric target columns).
pub fn column_quadrants(col: &Column) -> ColumnQuadrants {
    if col.column_type() != ColumnType::Numeric {
        return ColumnQuadrants {
            mean: None,
            bits: vec![None; col.values.len()],
        };
    }
    let mean = col.numeric_mean();
    let bits = match mean {
        None => vec![None; col.values.len()],
        Some(m) => col
            .values
            .iter()
            .map(|v| v.as_f64().map(|f| f >= m))
            .collect(),
    };
    ColumnQuadrants { mean, bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_common::Value;

    #[test]
    fn numeric_column_splits_on_mean() {
        let col = Column::new("n", vec![1i64, 2, 3, 10]);
        let q = column_quadrants(&col);
        assert_eq!(q.mean, Some(4.0));
        assert_eq!(
            q.bits,
            vec![Some(false), Some(false), Some(false), Some(true)]
        );
    }

    #[test]
    fn boundary_value_is_quadrant_one() {
        // value == mean -> bit 1, per the paper ("larger than or equal").
        let col = Column::new("n", vec![2i64, 2, 2]);
        let q = column_quadrants(&col);
        assert_eq!(q.bits, vec![Some(true); 3]);
    }

    #[test]
    fn categorical_column_is_all_null() {
        let col = Column::new(
            "c",
            vec![
                Value::Text("a".into()),
                Value::Text("b".into()),
                Value::Int(1),
            ],
        );
        let q = column_quadrants(&col);
        assert_eq!(q.mean, None);
        assert!(q.bits.iter().all(Option::is_none));
    }

    #[test]
    fn nulls_inside_numeric_column_stay_null() {
        let col = Column::new("n", vec![Value::Int(1), Value::Null, Value::Int(3)]);
        let q = column_quadrants(&col);
        assert_eq!(q.mean, Some(2.0));
        assert_eq!(q.bits, vec![Some(false), None, Some(true)]);
    }

    #[test]
    fn numeric_text_column_participates() {
        // Numbers-as-strings are numeric after inference.
        let col = Column::new(
            "t",
            vec![Value::Text("10".into()), Value::Text("30".into())],
        );
        let q = column_quadrants(&col);
        assert_eq!(q.mean, Some(20.0));
        assert_eq!(q.bits, vec![Some(false), Some(true)]);
    }
}

//! XASH — the super-key hash of MATE (Esmailoghli et al., VLDB 2022).
//!
//! XASH maps a cell value to a sparse 128-bit pattern and aggregates a row
//! by OR-ing its cells' patterns into one *super key*. The super key acts as
//! a bloom filter over the row: if value `v` occurs in row `r` then
//! `xash(v) & superkey(r) == xash(v)`. The MC seeker uses this to discard
//! candidate rows whose super key cannot contain the queried composite key,
//! without fetching the raw table.
//!
//! Like MATE, the pattern encodes the value's *least frequent characters*
//! (rare characters discriminate better than common ones), their rough
//! position inside the value, and the value length. This implementation is a
//! faithful re-parameterization rather than a bit-exact port: 96 bits carry
//! (character, position-bucket) features of the `N_CHARS` rarest characters
//! and 32 bits one-hot the length modulo 32. What the rest of the system
//! relies on — the subset property and a low false-positive rate — is
//! preserved and tested (including by property tests).

/// Number of rarest characters that contribute feature bits.
const N_CHARS: usize = 3;
/// Number of position buckets per character.
const POS_BUCKETS: u32 = 4;
/// Bits reserved for character features.
const CHAR_BITS: u32 = 96;
/// Bits reserved for the length one-hot.
const LEN_BITS: u32 = 32;

/// English-like character frequency ranking (most frequent first). Characters
/// outside the table rank as maximally rare. Mirrors MATE's frequency-driven
/// character selection.
const FREQ_ORDER: &[u8] = b"etaoinsrhldcumfpgwybvkxjqz0123456789";

fn char_rarity(c: u8) -> u32 {
    let lower = c.to_ascii_lowercase();
    match FREQ_ORDER.iter().position(|&f| f == lower) {
        Some(i) => i as u32,
        None => FREQ_ORDER.len() as u32 + lower as u32,
    }
}

/// Compute the XASH bit pattern of one (normalized) cell value.
///
/// Deterministic, allocation-free. Empty strings hash to a single length
/// bit so they still participate in the subset property.
pub fn xash_value(value: &str) -> u128 {
    let bytes = value.as_bytes();
    let len = bytes.len();
    let mut hash: u128 = 0;

    // Length feature.
    hash |= 1u128 << (CHAR_BITS + (len as u32 % LEN_BITS));
    if len == 0 {
        return hash;
    }

    // Select the N_CHARS rarest characters (by the fixed ranking, ties by
    // first occurrence) together with their positions.
    let mut picked: [(u32, usize, u8); N_CHARS] = [(0, 0, 0); N_CHARS];
    let mut n_picked = 0usize;
    for (pos, &b) in bytes.iter().enumerate() {
        // Skip spaces: multi-token values should hash by their content.
        if b == b' ' {
            continue;
        }
        let rarity = char_rarity(b);
        if n_picked < N_CHARS {
            picked[n_picked] = (rarity, pos, b);
            n_picked += 1;
            picked[..n_picked].sort_unstable_by_key(|p| std::cmp::Reverse(p.0));
        } else if rarity > picked[N_CHARS - 1].0 {
            picked[N_CHARS - 1] = (rarity, pos, b);
            picked.sort_unstable_by_key(|p| std::cmp::Reverse(p.0));
        }
    }

    for &(_, pos, b) in picked.iter().take(n_picked) {
        let bucket = (pos as u32 * POS_BUCKETS) / len as u32;
        let slot = (b.to_ascii_lowercase() as u32)
            .wrapping_mul(31)
            .wrapping_add(bucket)
            % CHAR_BITS;
        hash |= 1u128 << slot;
    }
    hash
}

/// Incremental super-key builder for one table row.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Xash {
    key: u128,
}

impl Xash {
    /// Empty super key.
    pub fn new() -> Self {
        Xash::default()
    }

    /// Fold one cell value into the super key.
    pub fn add(&mut self, value: &str) {
        self.key |= xash_value(value);
    }

    /// The aggregated super key.
    pub fn finish(&self) -> u128 {
        self.key
    }

    /// Bloom-filter subset test: could a row with this super key contain
    /// `value`? False positives possible, false negatives impossible.
    pub fn may_contain(superkey: u128, value: &str) -> bool {
        let h = xash_value(value);
        superkey & h == h
    }

    /// Subset test for a whole composite key.
    pub fn may_contain_all<'a>(superkey: u128, values: impl IntoIterator<Item = &'a str>) -> bool {
        values.into_iter().all(|v| Xash::may_contain(superkey, v))
    }
}

/// Build the super key of a row given its normalized cell values.
pub fn row_superkey<'a>(values: impl IntoIterator<Item = &'a str>) -> u128 {
    let mut x = Xash::new();
    for v in values {
        x.add(v);
    }
    x.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nonzero() {
        assert_eq!(xash_value("berlin"), xash_value("berlin"));
        assert_ne!(xash_value("berlin"), 0);
        assert_ne!(xash_value(""), 0); // length bit only
    }

    #[test]
    fn subset_property_exact() {
        let row = ["tom riddle", "2022", "it"];
        let sk = row_superkey(row);
        for v in row {
            assert!(Xash::may_contain(sk, v), "row value `{v}` must pass");
        }
        assert!(Xash::may_contain_all(sk, row));
    }

    #[test]
    fn discriminates_unrelated_values() {
        // A super key of a small row should reject most foreign values.
        let sk = row_superkey(["alpha", "beta", "gamma"]);
        let foreign = [
            "zürich",
            "quixotic",
            "w8xk",
            "jjjj",
            "0423-zz",
            "verylongvaluewithmanychars",
        ];
        let fp = foreign.iter().filter(|v| Xash::may_contain(sk, v)).count();
        assert!(fp <= 1, "too many false positives: {fp}");
    }

    #[test]
    fn length_bit_distinguishes_lengths() {
        // Same rare chars, different length -> different pattern.
        assert_ne!(xash_value("xy"), xash_value("xyy"));
    }

    #[test]
    fn spaces_do_not_contribute_bits() {
        let a = xash_value("ab");
        // Same chars with a space: length differs but char bits match.
        let b = xash_value("a b");
        let char_mask: u128 = (1u128 << CHAR_BITS) - 1;
        assert_eq!(a & char_mask, b & char_mask);
    }

    #[test]
    fn false_positive_rate_is_low_on_synthetic_rows() {
        // Empirical FP sanity check guarding against a degenerate hash.
        let vocab: Vec<String> = (0..500).map(|i| format!("value-{i:03}")).collect();
        let mut fps = 0usize;
        let mut tests = 0usize;
        for chunk in vocab.chunks(5).take(50) {
            let sk = row_superkey(chunk.iter().map(String::as_str));
            for probe in vocab.iter().step_by(7) {
                if chunk.iter().any(|c| c == probe) {
                    continue;
                }
                tests += 1;
                if Xash::may_contain(sk, probe) {
                    fps += 1;
                }
            }
        }
        let rate = fps as f64 / tests as f64;
        assert!(rate < 0.35, "XASH FP rate degenerate: {rate}");
    }

    #[test]
    fn rare_chars_dominate_selection() {
        // 'z' and 'q' are rarest and must set bits regardless of the common
        // characters around them.
        let with = xash_value("zebra");
        let without = xash_value("aerba");
        assert_ne!(with, without);
    }
}

//! Portable data-parallel microkernels for the flat hot loops.
//!
//! The executor's inner loops — selection-vector compaction, radix
//! counting, batched hashing, hash-bucket probing — are all flat passes
//! over contiguous arrays, deliberately shaped (PRs 3–4) so a vector
//! engine can chew through them. This crate is that engine: a small set of
//! **block-at-a-time kernels** with word-level (SWAR) data parallelism,
//! written so the auto-vectorizer can widen them further on targets with
//! real vector units. The stable toolchain has no `std::simd`, so the
//! vector path is the u64-word bitmap/SWAR fallback the design anticipated:
//!
//! * **Selection kernels** ([`sel`]) evaluate a predicate over blocks of 64
//!   candidates into one `u64` keep-mask, then emit survivors by bit
//!   iteration — an empty mask skips the block without a single store, a
//!   full mask bulk-copies it. The scalar twin is the branch-free
//!   write-all/advance-on-keep loop the engines used before; the mask path
//!   wins on selective scans precisely because it elides the stores (and
//!   the `resize` memset) the scalar form pays per candidate.
//! * **Histogram kernels** ([`hist`]) stripe radix counting across four
//!   independent count arrays to break the store-to-load dependency chain
//!   on hot partitions; the scatter pass stays a single-cursor loop (its
//!   per-partition cursors make it inherently serial) but lives here so
//!   both passes share one home and one parity suite.
//! * **Prefetch** ([`prefetch_read`]) issues a best-effort cache-line
//!   prefetch on x86_64 (a no-op elsewhere) so batched hash probes can
//!   overlap bucket-head misses a block ahead.
//!
//! `unsafe` in this crate is confined to two places: `_mm_prefetch` (never
//! faults, reads nothing architecturally) and the x86_64 compare kernels
//! behind [`sel::keep_mask_in8`] (SSE2 is the x86_64 baseline; the AVX2
//! form runs only after cached runtime detection). Every intrinsic path is
//! differentially tested against its portable SWAR twin.
//!
//! Batched hash mixing (`mix64x8`/`mix128x8`) lives in `blend_common::hash`
//! next to its scalar forms; the kernels here are the ones that need a
//! dispatch seam.
//!
//! # Dispatch rules
//!
//! The vector path is selected **once per process**: the first call to
//! [`enabled`] reads `BLEND_SIMD` (`0`/`false`/`off` disable; anything
//! else, or unset, enables) and caches the verdict. Benches and tests flip
//! paths in-process via [`force`], which overrides the environment without
//! touching it — mirroring `blend_obs::set_enabled`. Kernels never
//! dispatch per element: callers check once per batch (the wrappers here
//! do exactly that), so the scalar path costs one predictable branch per
//! batch, not per row.
//!
//! # Scalar-oracle contract
//!
//! Every kernel keeps its scalar twin `pub` (`*_scalar`) and **both paths
//! must produce byte-identical output** — same survivors in the same
//! order, same counts, same scatter layout — for every input, including
//! non-multiple-of-64 tails, `start` offsets landing mid-word, and
//! all-keep/all-drop masks. `tests/simd_parity.rs` fuzzes each pair
//! differentially, and the SQL-level parity suites pin end-to-end results
//! across `BLEND_SIMD={0,1}`; perf work may change *how* a kernel computes,
//! never *what*.
//!
//! # Adding a kernel
//!
//! 1. Land the scalar form first and name it `<kernel>_scalar`; it is the
//!    oracle, so keep it obvious rather than fast.
//! 2. Add the block/SWAR form as `<kernel>_blocks` and a thin dispatching
//!    wrapper `<kernel>` that checks [`enabled`] once.
//! 3. Extend `tests/simd_parity.rs` with a differential proptest covering
//!    tails, offsets, and degenerate (empty/full) inputs.
//! 4. Wire an A/B median (`simd_on_ns`/`simd_off_ns` via [`force`]) into
//!    whichever bench covers the calling loop.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod hist;
pub mod sel;

pub use hist::{count_parts, count_parts_scalar, count_parts_striped, scatter_parts};
pub use sel::{
    compact, compact_blocks, compact_scalar, extend_filtered, extend_filtered_blocks,
    extend_filtered_scalar, extend_range, extend_range_blocks, extend_range_in8,
    extend_range_in8_blocks, extend_range_in8_scalar, extend_range_over, extend_range_over_blocks,
    extend_range_over_scalar, extend_range_scalar, keep_mask_in8, keep_mask_in8_swar,
};

/// Process-wide override: 0 = follow the environment, 1 = force scalar,
/// 2 = force vector.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Cached verdict of the `BLEND_SIMD` environment variable.
static FROM_ENV: OnceLock<bool> = OnceLock::new();

/// True when the vector kernels are selected. The environment is read once
/// (first call) and cached; [`force`] overrides it without re-reading.
#[inline]
pub fn enabled() -> bool {
    match FORCED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *FROM_ENV.get_or_init(|| {
            !matches!(
                std::env::var("BLEND_SIMD").as_deref(),
                Ok("0") | Ok("false") | Ok("off")
            )
        }),
    }
}

/// Force the dispatch verdict in-process: `Some(true)` selects the vector
/// path, `Some(false)` the scalar path, `None` restores the environment's
/// verdict. For A/B benches and differential tests; not thread-isolated,
/// so flip it only around single-threaded measurement/assert sections.
pub fn force(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCED.store(v, Ordering::Relaxed);
}

/// Best-effort read prefetch of `slice[idx]` into L1. Out-of-bounds
/// indices are ignored (prefetching is advisory, so the bounds probe is
/// the only architectural effect); non-x86_64 targets compile to nothing.
#[inline]
pub fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(r) = slice.get(idx) {
        // SAFETY: `_mm_prefetch` is a hint — it never faults and performs
        // no architecturally visible read, and `r` is a live reference.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                r as *const T as *const i8,
            )
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_overrides_environment_both_ways() {
        force(Some(false));
        assert!(!enabled());
        force(Some(true));
        assert!(enabled());
        force(None);
        let _ = enabled(); // whatever the env says; just must not panic
    }

    #[test]
    fn prefetch_is_safe_at_any_index() {
        let v = vec![1u32, 2, 3];
        prefetch_read(&v, 0);
        prefetch_read(&v, 2);
        prefetch_read(&v, 3); // out of bounds: ignored
        prefetch_read::<u64>(&[], 0);
    }
}

//! Selection-vector kernels: block keep-masks with scalar twins.
//!
//! Both families preserve the engines' contract exactly: `sel[..start]`
//! is never touched, survivors keep ascending candidate order, and
//! degenerate inputs (`lo >= hi`, empty tails, `start == sel.len()`)
//! append nothing. See the crate docs for the dispatch and oracle rules.

/// Candidates per keep-mask word.
pub const BLOCK: usize = 64;

/// Keep-mask with the low `len` bits set (the "every candidate survives"
/// mask of a possibly short tail block).
#[inline]
fn full_mask(len: usize) -> u64 {
    debug_assert!((1..=BLOCK).contains(&len));
    u64::MAX >> (BLOCK - len)
}

/// Evaluate `keep` over up to 64 values into a keep-mask (bit `j` set when
/// `vals[j]` survives). Four independent accumulators break the OR
/// dependency chain so the predicate lanes can retire in parallel.
#[inline]
pub fn keep_mask<T: Copy>(vals: &[T], mut keep: impl FnMut(T) -> bool) -> u64 {
    debug_assert!(vals.len() <= BLOCK);
    let mut acc = [0u64; 4];
    let mut chunks = vals.chunks_exact(4);
    let mut j = 0u32;
    for c in &mut chunks {
        acc[0] |= (keep(c[0]) as u64) << j;
        acc[1] |= (keep(c[1]) as u64) << (j + 1);
        acc[2] |= (keep(c[2]) as u64) << (j + 2);
        acc[3] |= (keep(c[3]) as u64) << (j + 3);
        j += 4;
    }
    let mut m = acc[0] | acc[1] | acc[2] | acc[3];
    for &v in chunks.remainder() {
        m |= (keep(v) as u64) << j;
        j += 1;
    }
    m
}

/// Append the surviving positions of one block: `base + j` for every set
/// bit `j` of `m`. A full mask bulk-extends. Dense mixed blocks (at least
/// half the candidates survive) use the write-all/advance-on-keep form —
/// the bit loop's one branchy iteration per survivor loses to unconditional
/// stores once blocks stop being sparse. Sparse mixed blocks keep the bit
/// loop (few survivors, few stores).
#[inline]
fn push_survivors(sel: &mut Vec<u32>, base: u32, mut m: u64, len: usize) {
    if m == full_mask(len) {
        sel.extend(base..base + len as u32);
        return;
    }
    let cnt = m.count_ones() as usize;
    if cnt * 2 >= len {
        let start = sel.len();
        sel.resize(start + len, 0);
        let mut n = start;
        for j in 0..len {
            sel[n] = base + j as u32;
            n += (m >> j & 1) as usize;
        }
        debug_assert_eq!(n, start + cnt);
        sel.truncate(start + cnt);
    } else {
        while m != 0 {
            let j = m.trailing_zeros();
            sel.push(base + j);
            m &= m - 1;
        }
    }
}

// ---- in-place compaction ---------------------------------------------------

/// Stable in-place compaction of `sel[start..]`, dispatching on
/// [`crate::enabled`]: survivors of `keep` slide to the front, order
/// preserved, `sel[..start]` untouched.
#[inline]
pub fn compact(sel: &mut Vec<u32>, start: usize, keep: impl FnMut(u32) -> bool) {
    if crate::enabled() {
        compact_blocks(sel, start, keep);
    } else {
        compact_scalar(sel, start, keep);
    }
}

/// Scalar twin of [`compact_blocks`] (the oracle): writes every element
/// back unconditionally and advances the cursor by the predicate's
/// boolean — no data-dependent branch, one store per candidate.
#[inline]
pub fn compact_scalar(sel: &mut Vec<u32>, start: usize, mut keep: impl FnMut(u32) -> bool) {
    let mut n = start;
    for i in start..sel.len() {
        let p = sel[i];
        sel[n] = p;
        n += keep(p) as usize;
    }
    sel.truncate(n);
}

/// Block-mask compaction: evaluate `keep` over 64 candidates into one
/// keep-mask, then move only survivors. An all-drop block costs zero
/// stores; an all-keep block is one `copy_within` (elided entirely while
/// the vector is still dense, i.e. `n == i`).
///
/// In-place safety: the write cursor `n` never passes the read cursor —
/// at every block `n <= i`, and within a mixed block the `k`-th survivor
/// writes `sel[n + k]` with `n + k <= i + j` for source bit `j >= k`.
pub fn compact_blocks(sel: &mut Vec<u32>, start: usize, mut keep: impl FnMut(u32) -> bool) {
    let len = sel.len();
    let mut n = start;
    let mut i = start;
    while i < len {
        let bl = (len - i).min(BLOCK);
        let m = keep_mask(&sel[i..i + bl], &mut keep);
        if m == 0 {
            i += bl;
            continue;
        }
        if m == full_mask(bl) {
            if n != i {
                sel.copy_within(i..i + bl, n);
            }
            n += bl;
        } else if m.count_ones() as usize * 2 >= bl {
            // Dense mixed block: write-all/advance-on-keep beats the
            // branchy bit loop once most candidates survive. In-place safe
            // for the same reason as the sparse arm: the write cursor
            // `n + k` never passes the read cursor `i + j` (k <= j).
            for j in 0..bl {
                let v = sel[i + j];
                sel[n] = v;
                n += (m >> j & 1) as usize;
            }
        } else {
            let mut mm = m;
            while mm != 0 {
                let j = mm.trailing_zeros() as usize;
                sel[n] = sel[i + j];
                n += 1;
                mm &= mm - 1;
            }
        }
        i += bl;
    }
    sel.truncate(n);
}

// ---- candidate-list filtering ----------------------------------------------

/// Append the survivors of the candidate list `cands` to `sel` (order
/// preserved, `sel`'s existing prefix untouched), dispatching on
/// [`crate::enabled`]. The position-batch (`filter_batch`) shape.
#[inline]
pub fn extend_filtered(sel: &mut Vec<u32>, cands: &[u32], keep: impl FnMut(u32) -> bool) {
    if crate::enabled() {
        extend_filtered_blocks(sel, cands, keep);
    } else {
        extend_filtered_scalar(sel, cands, keep);
    }
}

/// Scalar twin of [`extend_filtered_blocks`] (the oracle): `resize` the
/// append window once, then write-all/advance-on-keep.
#[inline]
pub fn extend_filtered_scalar(
    sel: &mut Vec<u32>,
    cands: &[u32],
    mut keep: impl FnMut(u32) -> bool,
) {
    let start = sel.len();
    sel.resize(start + cands.len(), 0);
    let mut n = start;
    for &p in cands {
        sel[n] = p;
        n += keep(p) as usize;
    }
    sel.truncate(n);
}

/// Block-mask candidate filter: keep-mask per 64 candidates, survivors
/// appended by bit iteration — no pre-zeroed window, no store for
/// rejected candidates.
pub fn extend_filtered_blocks(
    sel: &mut Vec<u32>,
    cands: &[u32],
    mut keep: impl FnMut(u32) -> bool,
) {
    sel.reserve(cands.len());
    let mut i = 0;
    while i < cands.len() {
        let bl = (cands.len() - i).min(BLOCK);
        let w = &cands[i..i + bl];
        let mut m = keep_mask(w, &mut keep);
        if m == full_mask(bl) {
            sel.extend_from_slice(w);
        } else {
            while m != 0 {
                let j = m.trailing_zeros() as usize;
                sel.push(w[j]);
                m &= m - 1;
            }
        }
        i += bl;
    }
}

// ---- contiguous-range filtering --------------------------------------------

/// Append the survivors of the position range `lo..hi` to `sel`,
/// dispatching on [`crate::enabled`]. `lo >= hi` appends nothing.
#[inline]
pub fn extend_range(sel: &mut Vec<u32>, lo: usize, hi: usize, keep: impl FnMut(u32) -> bool) {
    if crate::enabled() {
        extend_range_blocks(sel, lo, hi, keep);
    } else {
        extend_range_scalar(sel, lo, hi, keep);
    }
}

/// Scalar twin of [`extend_range_blocks`] (the oracle): `resize` the
/// append window once, then the write-all/advance-on-keep pattern of
/// [`compact_scalar`]. The `resize` zero-fill is the memset the mask path
/// exists to elide.
#[inline]
pub fn extend_range_scalar(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    mut keep: impl FnMut(u32) -> bool,
) {
    let start = sel.len();
    sel.resize(start + hi.saturating_sub(lo), 0);
    let mut n = start;
    for pos in lo..hi {
        let p = pos as u32;
        sel[n] = p;
        n += keep(p) as usize;
    }
    sel.truncate(n);
}

/// Block-mask range filter over *positions*: the predicate sees the
/// position itself (engines that must chase a pointer per candidate — the
/// row store — use this form). Survivor blocks append through
/// [`push_survivors`]; nothing is written for rejected candidates and no
/// window is pre-zeroed.
pub fn extend_range_blocks(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    mut keep: impl FnMut(u32) -> bool,
) {
    if hi <= lo {
        return;
    }
    sel.reserve(hi - lo);
    let mut base = lo;
    while base < hi {
        let bl = (hi - base).min(BLOCK);
        let mut m = 0u64;
        for j in 0..bl as u32 {
            m |= (keep((base as u32) + j) as u64) << j;
        }
        if m != 0 {
            push_survivors(sel, base as u32, m, bl);
        }
        base += bl;
    }
}

/// Append the survivors of `lo..hi` judged by their *values* in a
/// contiguous column (`keep(vals[pos])`), dispatching on
/// [`crate::enabled`]. The column-store form: block loads come straight
/// off the column slice, so the mask build is the auto-vectorizer's
/// favorite shape. Requires `hi <= vals.len()` (checked by the slice
/// index); `lo >= hi` appends nothing.
#[inline]
pub fn extend_range_over<T: Copy>(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    vals: &[T],
    keep: impl FnMut(T) -> bool,
) {
    if crate::enabled() {
        extend_range_over_blocks(sel, lo, hi, vals, keep);
    } else {
        extend_range_over_scalar(sel, lo, hi, vals, keep);
    }
}

/// Scalar twin of [`extend_range_over_blocks`] (the oracle).
#[inline]
pub fn extend_range_over_scalar<T: Copy>(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    vals: &[T],
    mut keep: impl FnMut(T) -> bool,
) {
    extend_range_scalar(sel, lo, hi, |p| keep(vals[p as usize]));
}

/// Block-mask range filter over column values: see [`extend_range_over`].
pub fn extend_range_over_blocks<T: Copy>(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    vals: &[T],
    mut keep: impl FnMut(T) -> bool,
) {
    if hi <= lo {
        return;
    }
    sel.reserve(hi - lo);
    let mut base = lo;
    while base < hi {
        let bl = (hi - base).min(BLOCK);
        let m = keep_mask(&vals[base..base + bl], &mut keep);
        if m != 0 {
            push_survivors(sel, base as u32, m, bl);
        }
        base += bl;
    }
}

// ---- fixed-width IN-list probing -------------------------------------------

/// SWAR bit-pack multiplier: eight 0/1 bytes in a `u64` collapse to the
/// corresponding 8-bit mask in the product's top byte (byte `j` carries
/// weight `2^(7-j)`, so byte-lane `i` of the input lands at bit `i`; no
/// lane sum exceeds 255, so no carries cross lanes).
const PACK8: u64 = 0x0102_0408_1020_4080;

/// Membership of one code in a padded 8-needle probe block: eight
/// independent compares OR-folded branch-free. Duplicated pad needles are
/// harmless (OR is idempotent).
#[inline(always)]
fn hit_in8(n: &[u32; 8], c: u32) -> bool {
    ((c == n[0]) | (c == n[1]) | (c == n[2]) | (c == n[3]))
        | ((c == n[4]) | (c == n[5]) | (c == n[6]) | (c == n[7]))
}

/// Keep-mask of up to 64 codes against a fixed 8-needle probe block.
///
/// Dispatches to the widest compare unit the target has: AVX2 (detected
/// once at runtime, cached) compares 8 codes against all 8 needles in 16
/// vector ops, the x86_64 SSE2 baseline does 4 at a time, and every other
/// architecture runs the portable SWAR form ([`keep_mask_in8_swar`]),
/// which doubles as the differential oracle for the intrinsic paths.
#[inline]
pub fn keep_mask_in8(vals: &[u32], n: &[u32; 8]) -> u64 {
    debug_assert!(vals.len() <= BLOCK);
    #[cfg(target_arch = "x86_64")]
    {
        if avx2_available() {
            // SAFETY: AVX2 presence was just checked (cached detection).
            return unsafe { keep_mask_in8_avx2(vals, n) };
        }
        keep_mask_in8_sse2(vals, n)
    }
    #[cfg(not(target_arch = "x86_64"))]
    keep_mask_in8_swar(vals, n)
}

/// Cached runtime AVX2 detection (one `cpuid` ever).
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static AVX2: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 no, 2 yes
    match AVX2.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let yes = std::arch::is_x86_feature_detected!("avx2");
            AVX2.store(if yes { 2 } else { 1 }, Ordering::Relaxed);
            yes
        }
    }
}

/// AVX2 form of [`keep_mask_in8`]: one 8-lane load, eight broadcast
/// compares OR-folded, one movemask per 8 codes.
///
/// # Safety
///
/// Requires AVX2 (checked by the caller via [`avx2_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn keep_mask_in8_avx2(vals: &[u32], n: &[u32; 8]) -> u64 {
    use std::arch::x86_64::*;
    let nv: [__m256i; 8] = std::array::from_fn(|k| _mm256_set1_epi32(n[k] as i32));
    let mut m = 0u64;
    let mut chunks = vals.chunks_exact(8);
    let mut shift = 0u32;
    for c in &mut chunks {
        // SAFETY: `c` is exactly 8 u32s = 32 bytes; unaligned load is fine.
        let v = unsafe { _mm256_loadu_si256(c.as_ptr() as *const __m256i) };
        let mut hit = _mm256_cmpeq_epi32(v, nv[0]);
        for needle in &nv[1..] {
            hit = _mm256_or_si256(hit, _mm256_cmpeq_epi32(v, *needle));
        }
        let bits = _mm256_movemask_ps(_mm256_castsi256_ps(hit)) as u32;
        m |= (bits as u64) << shift;
        shift += 8;
    }
    for &c in chunks.remainder() {
        m |= (hit_in8(n, c) as u64) << shift;
        shift += 1;
    }
    m
}

/// SSE2 form of [`keep_mask_in8`]: 4 codes per compare round. SSE2 is part
/// of the x86_64 baseline, so this path needs no runtime detection.
#[cfg(target_arch = "x86_64")]
fn keep_mask_in8_sse2(vals: &[u32], n: &[u32; 8]) -> u64 {
    use std::arch::x86_64::*;
    // SAFETY: every SSE2 intrinsic here is available on all x86_64 CPUs
    // (baseline feature), and the only memory access loads 16 bytes from a
    // `chunks_exact(4)` slice of u32s.
    unsafe {
        let nv: [__m128i; 8] = std::array::from_fn(|k| _mm_set1_epi32(n[k] as i32));
        let mut m = 0u64;
        let mut chunks = vals.chunks_exact(4);
        let mut shift = 0u32;
        for c in &mut chunks {
            let v = _mm_loadu_si128(c.as_ptr() as *const __m128i);
            let mut hit = _mm_cmpeq_epi32(v, nv[0]);
            for needle in &nv[1..] {
                hit = _mm_or_si128(hit, _mm_cmpeq_epi32(v, *needle));
            }
            let bits = _mm_movemask_ps(_mm_castsi128_ps(hit)) as u32;
            m |= (bits as u64) << shift;
            shift += 4;
        }
        for &c in chunks.remainder() {
            m |= (hit_in8(n, c) as u64) << shift;
            shift += 1;
        }
        m
    }
}

/// Portable SWAR form of [`keep_mask_in8`] (and the oracle the intrinsic
/// paths are differentially tested against): every shift is a compile-time
/// constant — eight hits land as 0/1 bytes in one `u64` and a single
/// multiply ([`PACK8`]) packs them into the mask byte.
#[inline]
pub fn keep_mask_in8_swar(vals: &[u32], n: &[u32; 8]) -> u64 {
    debug_assert!(vals.len() <= BLOCK);
    let mut m = 0u64;
    let mut chunks = vals.chunks_exact(8);
    let mut shift = 0u32;
    for c in &mut chunks {
        let bytes = (hit_in8(n, c[0]) as u64)
            | ((hit_in8(n, c[1]) as u64) << 8)
            | ((hit_in8(n, c[2]) as u64) << 16)
            | ((hit_in8(n, c[3]) as u64) << 24)
            | ((hit_in8(n, c[4]) as u64) << 32)
            | ((hit_in8(n, c[5]) as u64) << 40)
            | ((hit_in8(n, c[6]) as u64) << 48)
            | ((hit_in8(n, c[7]) as u64) << 56);
        m |= (bytes.wrapping_mul(PACK8) >> 56) << shift;
        shift += 8;
    }
    for &c in chunks.remainder() {
        m |= (hit_in8(n, c) as u64) << shift;
        shift += 1;
    }
    m
}

/// Append the survivors of `lo..hi` whose code in `vals` matches any of
/// the 8 padded `needles`, dispatching on [`crate::enabled`].
///
/// The small-IN-list specialization of [`extend_range_over`]: engines that
/// compiled a tiny membership set (at most 8 ids, padded by repeating one
/// of them) hand the needles directly so the vector path can run the
/// constant-shift broadcast-compare kernel instead of a per-element set
/// probe. `lo >= hi` appends nothing; requires `hi <= vals.len()`.
#[inline]
pub fn extend_range_in8(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    vals: &[u32],
    needles: &[u32; 8],
) {
    if crate::enabled() {
        extend_range_in8_blocks(sel, lo, hi, vals, needles);
    } else {
        extend_range_in8_scalar(sel, lo, hi, vals, needles);
    }
}

/// Scalar twin of [`extend_range_in8_blocks`] (the oracle): the generic
/// scalar range filter with the same 8-needle membership per element.
#[inline]
pub fn extend_range_in8_scalar(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    vals: &[u32],
    needles: &[u32; 8],
) {
    extend_range_scalar(sel, lo, hi, |p| hit_in8(needles, vals[p as usize]));
}

/// Block form of the small-IN-list range filter: [`keep_mask_in8`] per 64
/// codes, survivors through [`push_survivors`]. See [`extend_range_in8`].
pub fn extend_range_in8_blocks(
    sel: &mut Vec<u32>,
    lo: usize,
    hi: usize,
    vals: &[u32],
    needles: &[u32; 8],
) {
    if hi <= lo {
        return;
    }
    sel.reserve(hi - lo);
    let mut base = lo;
    while base < hi {
        let bl = (hi - base).min(BLOCK);
        let m = keep_mask_in8(&vals[base..base + bl], needles);
        if m != 0 {
            push_survivors(sel, base as u32, m, bl);
        }
        base += bl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keep_mask_matches_naive_bits() {
        let vals: Vec<u32> = (0..61).collect();
        let m = keep_mask(&vals, |v| v % 3 == 0);
        for (j, &v) in vals.iter().enumerate() {
            assert_eq!((m >> j) & 1 == 1, v % 3 == 0);
        }
        assert_eq!(m >> vals.len(), 0);
        assert_eq!(keep_mask(&vals, |_| true), full_mask(61));
        assert_eq!(keep_mask::<u32>(&[], |_| true), 0);
    }

    #[test]
    fn compact_paths_agree_and_preserve_prefix() {
        for len in [0usize, 1, 3, 63, 64, 65, 130, 257] {
            for start in [0usize, 1, 7] {
                let base: Vec<u32> = (0..(start + len) as u32).map(|i| i * 3 % 97).collect();
                for keep in [
                    (|p: u32| !p.is_multiple_of(5)) as fn(u32) -> bool,
                    |_| true,
                    |_| false,
                ] {
                    let mut a = base.clone();
                    let mut b = base.clone();
                    compact_scalar(&mut a, start.min(base.len()), keep);
                    compact_blocks(&mut b, start.min(base.len()), keep);
                    assert_eq!(a, b, "len={len} start={start}");
                    assert_eq!(&b[..start.min(b.len())], &base[..start.min(b.len())]);
                }
            }
        }
    }

    #[test]
    fn extend_range_paths_agree_on_degenerate_ranges() {
        for (lo, hi) in [(0usize, 0usize), (5, 5), (7, 3), (0, 64), (3, 200)] {
            let mut a = vec![42u32];
            let mut b = vec![42u32];
            extend_range_scalar(&mut a, lo, hi, |p| p % 2 == 0);
            extend_range_blocks(&mut b, lo, hi, |p| p % 2 == 0);
            assert_eq!(a, b);
            assert_eq!(a[0], 42);
        }
    }

    #[test]
    fn keep_mask_in8_matches_generic_mask() {
        let needles = [3u32, 7, 7, 7, 11, 900, 7, 7]; // padded, duplicated
        for len in [0usize, 1, 7, 8, 9, 15, 16, 63, 64] {
            let vals: Vec<u32> = (0..len as u32).map(|i| i * 3 % 17).collect();
            let want = keep_mask(&vals, |c| needles.contains(&c));
            assert_eq!(keep_mask_in8(&vals, &needles), want, "len={len}");
            assert_eq!(keep_mask_in8_swar(&vals, &needles), want, "swar len={len}");
        }
        assert_eq!(keep_mask_in8(&[3; 64], &needles), u64::MAX);
        assert_eq!(keep_mask_in8(&[4; 64], &needles), 0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn in8_intrinsic_paths_match_swar_oracle() {
        // Every misaligned length up to a full block, values straddling
        // 0/u32::MAX, duplicate needles: the SSE2 and (when present) AVX2
        // forms must agree bit-for-bit with the portable SWAR form.
        let needles = [0u32, u32::MAX, 5, 64, 63, 5, 5, 5];
        let vals: Vec<u32> = (0..BLOCK as u32)
            .map(|i| {
                if i % 9 == 0 {
                    u32::MAX
                } else {
                    i.wrapping_mul(0x9E37_79B9) % 67
                }
            })
            .collect();
        for len in 0..=BLOCK {
            let want = keep_mask_in8_swar(&vals[..len], &needles);
            assert_eq!(
                keep_mask_in8_sse2(&vals[..len], &needles),
                want,
                "sse2 len={len}"
            );
            if avx2_available() {
                // SAFETY: AVX2 presence just checked.
                let got = unsafe { keep_mask_in8_avx2(&vals[..len], &needles) };
                assert_eq!(got, want, "avx2 len={len}");
            }
            assert_eq!(
                keep_mask_in8(&vals[..len], &needles),
                want,
                "dispatch len={len}"
            );
        }
    }

    #[test]
    fn extend_range_in8_paths_agree() {
        let vals: Vec<u32> = (0..300u32).map(|i| i * 7 % 31).collect();
        let needles = [0u32, 5, 12, 30, 0, 0, 0, 0];
        for (lo, hi) in [(0usize, 300usize), (13, 13), (17, 3), (13, 77), (250, 300)] {
            let mut a = vec![9u32];
            let mut b = vec![9u32];
            extend_range_in8_scalar(&mut a, lo, hi, &vals, &needles);
            extend_range_in8_blocks(&mut b, lo, hi, &vals, &needles);
            assert_eq!(a, b, "lo={lo} hi={hi}");
            assert_eq!(a[0], 9);
        }
    }

    #[test]
    fn push_survivors_dense_and_sparse_mixed_blocks_agree() {
        // Same mask emitted through both mixed-block arms must yield the
        // same survivors: compare against the naive bit walk.
        for (m, len) in [
            (u64::MAX ^ 1, 64usize), // dense: all but one
            (0b1011_1101u64, 8),     // dense: 6 of 8
            (0b1000_0001u64, 8),     // sparse: 2 of 8
            (1u64 << 63, 64),        // sparse: 1 of 64
            ((1u64 << 40) - 2, 41),  // dense with tail
        ] {
            let mut got = vec![77u32];
            push_survivors(&mut got, 100, m, len);
            let want: Vec<u32> = std::iter::once(77)
                .chain((0..len as u32).filter(|j| m >> j & 1 == 1).map(|j| 100 + j))
                .collect();
            assert_eq!(got, want, "m={m:#x} len={len}");
        }
    }

    #[test]
    fn extend_range_over_paths_agree() {
        let vals: Vec<u32> = (0..300u32).map(|i| i * 7 % 31).collect();
        for (lo, hi) in [(0usize, 300usize), (13, 13), (13, 77), (250, 300)] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            extend_range_over_scalar(&mut a, lo, hi, &vals, |v| v < 11);
            extend_range_over_blocks(&mut b, lo, hi, &vals, |v| v < 11);
            assert_eq!(a, b);
        }
    }
}

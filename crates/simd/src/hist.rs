//! Radix-partition histogram kernels.
//!
//! The counting pass of a two-pass counting sort is a serial bottleneck on
//! skewed inputs: consecutive items landing in the same partition turn
//! `counts[p] += 1` into a store-to-load dependency chain. The striped
//! kernel breaks the chain by accumulating into four independent
//! histograms and folding them at the end — the classic multi-histogram
//! radix trick, profitable exactly when the histograms stay cache-resident
//! (partition counts here are capped at 256, so four stripes fit in 4 KiB).
//!
//! The scatter pass stays a single-cursor loop: each partition's write
//! cursor serializes its own items by construction (that order *is* the
//! ascending-within-partition invariant downstream consumers rely on), so
//! there is nothing to stripe. It lives here anyway so both passes share
//! one home and the differential parity suite covers the pair.

/// Striping width of [`count_parts_striped`].
const STRIPES: usize = 4;

/// Inputs below this length take the scalar count unconditionally — the
/// stripe fold costs `4 * counts.len()` adds, which only amortizes over a
/// reasonably long input.
const STRIPE_MIN_ITEMS: usize = 1024;

/// Count partition occupancy: `counts[p] += |{i : parts[i] == p}|`,
/// dispatching on [`crate::enabled`]. Every `parts[i]` must index within
/// `counts`.
#[inline]
pub fn count_parts(parts: &[u32], counts: &mut [u32]) {
    if crate::enabled() {
        count_parts_striped(parts, counts);
    } else {
        count_parts_scalar(parts, counts);
    }
}

/// Scalar twin of [`count_parts_striped`] (the oracle).
#[inline]
pub fn count_parts_scalar(parts: &[u32], counts: &mut [u32]) {
    for &p in parts {
        counts[p as usize] += 1;
    }
}

/// Four-histogram counting: lanes accumulate into disjoint stripes so a
/// run of identical partition ids no longer serializes on one counter.
/// Falls back to the scalar loop when the input is short or the stripes
/// would not stay cache-resident.
pub fn count_parts_striped(parts: &[u32], counts: &mut [u32]) {
    let n_parts = counts.len();
    if parts.len() < STRIPE_MIN_ITEMS || n_parts == 0 || n_parts > 256 {
        count_parts_scalar(parts, counts);
        return;
    }
    let mut hist = vec![0u32; STRIPES * n_parts];
    let (h0, rest) = hist.split_at_mut(n_parts);
    let (h1, rest) = rest.split_at_mut(n_parts);
    let (h2, h3) = rest.split_at_mut(n_parts);
    let mut chunks = parts.chunks_exact(STRIPES);
    for c in &mut chunks {
        h0[c[0] as usize] += 1;
        h1[c[1] as usize] += 1;
        h2[c[2] as usize] += 1;
        h3[c[3] as usize] += 1;
    }
    for &p in chunks.remainder() {
        h0[p as usize] += 1;
    }
    for (i, c) in counts.iter_mut().enumerate() {
        *c += h0[i] + h1[i] + h2[i] + h3[i];
    }
}

/// Scatter pass of the counting sort: item index `i` lands at
/// `items[cursor[parts[i]]]`, advancing that partition's cursor — input
/// order within each partition is preserved, which is the load-bearing
/// invariant of `blend_parallel::radix`. Single-cursor by necessity (see
/// the module docs); shared by both dispatch paths.
#[inline]
pub fn scatter_parts(parts: &[u32], cursor: &mut [u32], items: &mut [u32]) {
    for (i, &p) in parts.iter().enumerate() {
        let c = &mut cursor[p as usize];
        items[*c as usize] = i as u32;
        *c += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_count_matches_scalar_across_shapes() {
        for n in [0usize, 1, 3, STRIPE_MIN_ITEMS - 1, STRIPE_MIN_ITEMS, 4097] {
            for n_parts in [1usize, 2, 7, 256] {
                let parts: Vec<u32> = (0..n)
                    .map(|i| (i * 2654435761) as u32 % n_parts as u32)
                    .collect();
                let mut a = vec![0u32; n_parts];
                let mut b = vec![0u32; n_parts];
                count_parts_scalar(&parts, &mut a);
                count_parts_striped(&parts, &mut b);
                assert_eq!(a, b, "n={n} n_parts={n_parts}");
                assert_eq!(a.iter().sum::<u32>() as usize, n);
            }
        }
    }

    #[test]
    fn striped_count_skewed_single_partition() {
        // All items in one partition: the exact shape the stripes exist for.
        let parts = vec![3u32; 5000];
        let mut counts = vec![0u32; 8];
        count_parts_striped(&parts, &mut counts);
        assert_eq!(counts[3], 5000);
        assert_eq!(counts.iter().sum::<u32>(), 5000);
    }

    #[test]
    fn scatter_preserves_input_order_within_partition() {
        let parts = [1u32, 0, 1, 1, 0];
        let mut cursor = [0u32, 2]; // partition 0 at 0.., partition 1 at 2..
        let mut items = [0u32; 5];
        scatter_parts(&parts, &mut cursor, &mut items);
        assert_eq!(items, [1, 4, 0, 2, 3]);
        assert_eq!(cursor, [2, 5]);
    }
}

//! `EXPLAIN ANALYZE`-style query profiles rendered from span trees.
//!
//! A [`Profile`] is the per-query output of the span collector
//! ([`crate::trace_begin`] → [`crate::Trace::finish`]): one node per
//! span, children ordered by start time, each carrying wall nanos, the
//! recording thread's ordinal, and typed attributes. It subsumes the
//! scattered per-phase stats (`ParallelPhase`, `HashTableStats`,
//! `ServingStats`) into one navigable tree that rides
//! `QueryReport::profile`.

use std::fmt::Write as _;

/// A typed span attribute value. Integer-only on the numeric side so
/// profiles stay `Eq` (they ride `QueryReport`, which derives `Eq`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    U64(u64),
    I64(i64),
    Str(String),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One span in a [`Profile`] tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileNode {
    /// Span name, dot-scoped by subsystem (`query`, `scan`, `join.build`,
    /// `join.probe`, `group`, `seeker`).
    pub name: String,
    /// Wall-clock duration of the span in nanoseconds.
    pub nanos: u64,
    /// Dense ordinal of the thread the span ran on (not an OS tid).
    pub thread: u64,
    /// Typed attributes in recording order (rows, partitions, buckets…).
    pub attrs: Vec<(String, AttrValue)>,
    /// Child spans, ordered by start time.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Attribute value by key, if recorded.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Depth-first search for the first node whose name equals `name`.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Depth-first search with a prefix match (`find_prefix("scan")`
    /// matches `scan:a`).
    pub fn find_prefix(&self, prefix: &str) -> Option<&ProfileNode> {
        if self.name.starts_with(prefix) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find_prefix(prefix))
    }

    fn render_into(&self, out: &mut String, indent: usize, last: bool, root: bool) {
        if root {
            let _ = write!(out, "{}", self.name);
        } else {
            for _ in 0..indent {
                out.push_str("  ");
            }
            let _ = write!(out, "{} {}", if last { "└─" } else { "├─" }, self.name);
        }
        let _ = write!(out, "  [{}]", format_nanos(self.nanos));
        if !self.attrs.is_empty() {
            out.push_str("  (");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k}={v}");
            }
            out.push(')');
        }
        out.push('\n');
        for (i, child) in self.children.iter().enumerate() {
            child.render_into(out, indent + 1, i + 1 == self.children.len(), false);
        }
    }
}

/// Human-readable duration: picks ns/µs/ms/s to keep 3–4 significant
/// digits, integer math only.
fn format_nanos(nanos: u64) -> String {
    if nanos < 10_000 {
        format!("{nanos}ns")
    } else if nanos < 10_000_000 {
        format!("{}.{:01}µs", nanos / 1_000, (nanos % 1_000) / 100)
    } else if nanos < 10_000_000_000 {
        format!(
            "{}.{:01}ms",
            nanos / 1_000_000,
            (nanos % 1_000_000) / 100_000
        )
    } else {
        format!(
            "{}.{:02}s",
            nanos / 1_000_000_000,
            (nanos % 1_000_000_000) / 10_000_000
        )
    }
}

/// The full span tree of one query — `EXPLAIN ANALYZE` output as data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    pub root: ProfileNode,
}

impl Profile {
    /// Depth-first exact-name lookup from the root.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        self.root.find(name)
    }

    /// Depth-first prefix lookup from the root.
    pub fn find_prefix(&self, prefix: &str) -> Option<&ProfileNode> {
        self.root.find_prefix(prefix)
    }

    /// Render the tree for humans:
    ///
    /// ```text
    /// query  [1.2ms]  (path=positional)
    ///   ├─ scan:a  [310.0µs]  (rows=4000, partitions=4)
    ///   ├─ join.build  [400.2µs]  (buckets=8192, max_chain=3)
    ///   ├─ join.probe  [350.1µs]  (partitions=4)
    ///   └─ group  [140.9µs]  (groups=20)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0, true, true);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile {
            root: ProfileNode {
                name: "query".into(),
                nanos: 1_200_000,
                thread: 0,
                attrs: vec![("path".into(), AttrValue::Str("positional".into()))],
                children: vec![
                    ProfileNode {
                        name: "scan:a".into(),
                        nanos: 310_000,
                        thread: 0,
                        attrs: vec![("rows".into(), AttrValue::U64(4000))],
                        children: vec![],
                    },
                    ProfileNode {
                        name: "join.build".into(),
                        nanos: 400_200,
                        thread: 0,
                        attrs: vec![],
                        children: vec![],
                    },
                ],
            },
        }
    }

    #[test]
    fn find_walks_depth_first() {
        let p = sample();
        assert_eq!(p.find("join.build").unwrap().nanos, 400_200);
        assert!(p.find("nope").is_none());
        assert_eq!(p.find_prefix("scan").unwrap().name, "scan:a");
    }

    #[test]
    fn render_shows_every_node_and_attr() {
        let text = sample().render();
        assert!(text.contains("query"));
        assert!(text.contains("path=positional"));
        assert!(text.contains("├─ scan:a"));
        assert!(text.contains("rows=4000"));
        assert!(text.contains("└─ join.build"));
    }

    #[test]
    fn durations_format_human_readably() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(25_500), "25.5µs");
        assert_eq!(format_nanos(12_300_000), "12.3ms");
        assert_eq!(format_nanos(2_450_000_000_000 / 100), "24.50s");
    }
}

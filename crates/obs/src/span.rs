//! RAII wall-clock spans collected per thread into a query profile tree.
//!
//! A *trace* ([`trace_begin`]) opens a root span and arms the calling
//! thread's collector; while armed, every [`span`] records a node whose
//! parent is the innermost open span. [`Trace::finish`] closes the root
//! and returns the subtree as a [`Profile`]. With no trace armed (or
//! instrumentation disabled), [`span`] returns an inert guard whose whole
//! cost is one TLS read and a branch — executors can instrument phases
//! unconditionally.
//!
//! Traces nest: a plan-level trace in `blend` core can enclose per-query
//! traces in the SQL engine. Finishing an inner trace clones its subtree
//! out (the spans also remain part of the enclosing trace's tree).
//!
//! The collector is thread-local on purpose: a query's orchestration —
//! phase boundaries, hash-table builds, merges — runs on the thread that
//! called the engine, while pool workers only execute leaf morsel
//! closures, which are far too fine-grained to span (see the overhead
//! contract in the crate docs).

use std::borrow::Cow;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

use crate::metrics::thread_ordinal;
use crate::profile::{AttrValue, Profile, ProfileNode};

struct Rec {
    name: Cow<'static, str>,
    parent: Option<usize>,
    start: Instant,
    nanos: u64,
    thread: u64,
    attrs: Vec<(Cow<'static, str>, AttrValue)>,
    closed: bool,
}

#[derive(Default)]
struct Collector {
    recs: Vec<Rec>,
    stack: Vec<usize>,
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

fn push_rec(name: Cow<'static, str>, root: bool) -> Option<usize> {
    if !crate::enabled() {
        return None;
    }
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        if !root && c.stack.is_empty() {
            return None; // no trace armed: plain spans are inert
        }
        let parent = c.stack.last().copied();
        let idx = c.recs.len();
        c.recs.push(Rec {
            name,
            parent,
            start: Instant::now(),
            nanos: 0,
            thread: thread_ordinal(),
            attrs: Vec::new(),
            closed: false,
        });
        c.stack.push(idx);
        Some(idx)
    })
}

fn close_rec(idx: usize) {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        let rec = &mut c.recs[idx];
        rec.nanos = rec.start.elapsed().as_nanos() as u64;
        rec.closed = true;
        // RAII gives LIFO drops; be defensive about a guard held across
        // an early return anyway.
        if c.stack.last() == Some(&idx) {
            c.stack.pop();
        } else if let Some(pos) = c.stack.iter().rposition(|&i| i == idx) {
            c.stack.truncate(pos);
        }
    });
}

fn add_attr(idx: Option<usize>, key: &'static str, value: AttrValue) {
    let Some(idx) = idx else { return };
    COLLECTOR.with(|c| {
        c.borrow_mut().recs[idx]
            .attrs
            .push((Cow::Borrowed(key), value));
    });
}

/// Assemble the subtree rooted at `root` into owned profile nodes.
fn subtree(recs: &[Rec], root: usize) -> ProfileNode {
    let mut in_tree = vec![false; recs.len()];
    in_tree[root] = true;
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); recs.len()];
    for i in (root + 1)..recs.len() {
        if let Some(p) = recs[i].parent {
            if in_tree[p] {
                in_tree[i] = true;
                children[p].push(i);
            }
        }
    }
    fn build(recs: &[Rec], children: &[Vec<usize>], i: usize) -> ProfileNode {
        let rec = &recs[i];
        ProfileNode {
            name: rec.name.clone().into_owned(),
            // A guard still alive when the trace finishes reads as
            // "elapsed so far" instead of zero.
            nanos: if rec.closed {
                rec.nanos
            } else {
                rec.start.elapsed().as_nanos() as u64
            },
            thread: rec.thread,
            attrs: rec
                .attrs
                .iter()
                .map(|(k, v)| (k.clone().into_owned(), v.clone()))
                .collect(),
            children: children[i]
                .iter()
                .map(|&c| build(recs, children, c))
                .collect(),
        }
    }
    build(recs, &children, root)
}

/// Open a trace: the root span the current thread's subsequent [`span`]
/// calls nest under. Returns an inert trace when instrumentation is
/// disabled. Traces may nest; finish the inner one first.
pub fn trace_begin(name: &'static str) -> Trace {
    Trace {
        root: push_rec(Cow::Borrowed(name), true),
        _not_send: PhantomData,
    }
}

/// An armed trace. [`finish`](Trace::finish) harvests the [`Profile`];
/// dropping without finishing discards the tree (next outermost finish
/// or trace begin cleans up).
pub struct Trace {
    root: Option<usize>,
    _not_send: PhantomData<*const ()>,
}

impl Trace {
    /// Attach an integer attribute to the root span.
    pub fn attr_u64(&self, key: &'static str, v: u64) {
        add_attr(self.root, key, AttrValue::U64(v));
    }

    /// Attach a string attribute to the root span.
    pub fn attr_str(&self, key: &'static str, v: impl Into<String>) {
        add_attr(self.root, key, AttrValue::Str(v.into()));
    }

    /// Close the root span and return the collected tree, or `None` for
    /// an inert trace. For the outermost trace this also clears the
    /// thread's collector; an inner trace's spans stay part of the
    /// enclosing tree.
    pub fn finish(mut self) -> Option<Profile> {
        let root = self.root.take()?;
        close_rec(root);
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            let profile = Profile {
                root: subtree(&c.recs, root),
            };
            if c.stack.is_empty() {
                c.recs.clear();
            }
            Some(profile)
        })
    }
}

impl Drop for Trace {
    fn drop(&mut self) {
        if let Some(root) = self.root.take() {
            close_rec(root);
            COLLECTOR.with(|c| {
                let mut c = c.borrow_mut();
                if c.stack.is_empty() {
                    c.recs.clear();
                }
            });
        }
    }
}

/// Record a span under the innermost open trace. Inert (one TLS read)
/// when no trace is armed or instrumentation is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        idx: push_rec(Cow::Borrowed(name), false),
        _not_send: PhantomData,
    }
}

/// [`span`] with a runtime-built name (e.g. `scan:{alias}`,
/// `seeker:{op}`). Names still must come from closed sets — they feed
/// profile trees, not the metrics registry, but keep them readable.
#[inline]
pub fn span_owned(name: String) -> SpanGuard {
    SpanGuard {
        idx: push_rec(Cow::Owned(name), false),
        _not_send: PhantomData,
    }
}

/// RAII span handle: the span closes (capturing wall nanos) on drop.
pub struct SpanGuard {
    idx: Option<usize>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Attach an unsigned integer attribute (row counts, partitions…).
    pub fn attr_u64(&self, key: &'static str, v: u64) {
        add_attr(self.idx, key, AttrValue::U64(v));
    }

    /// Attach a signed integer attribute.
    pub fn attr_i64(&self, key: &'static str, v: i64) {
        add_attr(self.idx, key, AttrValue::I64(v));
    }

    /// Attach a string attribute (small closed sets only).
    pub fn attr_str(&self, key: &'static str, v: impl Into<String>) {
        add_attr(self.idx, key, AttrValue::Str(v.into()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(idx) = self.idx.take() {
            close_rec(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_without_trace_are_inert() {
        crate::set_enabled(true);
        let g = span("orphan");
        assert!(g.idx.is_none());
    }

    #[test]
    fn trace_collects_nested_tree() {
        crate::set_enabled(true);
        let trace = trace_begin("query");
        trace.attr_str("path", "positional");
        {
            let s = span("scan");
            s.attr_u64("rows", 42);
            drop(s);
            let j = span("join.build");
            {
                let inner = span_owned("partition:0".to_string());
                drop(inner);
            }
            drop(j);
        }
        let profile = trace.finish().expect("armed trace yields profile");
        assert_eq!(profile.root.name, "query");
        assert_eq!(profile.root.children.len(), 2);
        assert_eq!(profile.root.children[0].name, "scan");
        assert_eq!(
            profile.root.children[0].attr("rows"),
            Some(&AttrValue::U64(42))
        );
        assert_eq!(profile.root.children[1].children[0].name, "partition:0");
        assert!(profile.find("scan").is_some());
        // Collector fully drained for the next query on this thread.
        COLLECTOR.with(|c| {
            let c = c.borrow();
            assert!(c.recs.is_empty() && c.stack.is_empty());
        });
    }

    #[test]
    fn nested_traces_each_get_their_subtree() {
        crate::set_enabled(true);
        let outer = trace_begin("plan");
        let _s = span("seeker:sc");
        let inner = trace_begin("query");
        drop(span("scan"));
        let inner_profile = inner.finish().unwrap();
        assert_eq!(inner_profile.root.name, "query");
        assert_eq!(inner_profile.root.children[0].name, "scan");
        drop(_s);
        let outer_profile = outer.finish().unwrap();
        // The inner trace's spans remain visible in the outer tree.
        assert!(outer_profile.find("query").is_some());
        assert!(outer_profile.find("scan").is_some());
    }

    #[test]
    fn disabled_trace_is_inert() {
        crate::set_enabled(false);
        let t = trace_begin("query");
        let g = span("scan");
        assert!(g.idx.is_none());
        assert!(t.finish().is_none());
        crate::set_enabled(true);
    }
}

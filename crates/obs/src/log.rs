//! Leveled logging facade replacing bare `eprintln!` diagnostics.
//!
//! Usage: `blend_obs::warn!("worker {} exited early", id)`. The max
//! level comes from `BLEND_LOG` (`off`, `error`, `warn`, `info`,
//! `debug`; default `warn`), parsed once per process. The macros check
//! the level *before* formatting, so a filtered-out call costs one
//! atomic load.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

/// 0 = off; otherwise the numeric value of the max enabled [`Level`].
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static LEVEL_INIT: OnceLock<()> = OnceLock::new();

fn parse_level(s: &str) -> u8 {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => 0,
        "error" => Level::Error as u8,
        "info" => Level::Info as u8,
        "debug" | "trace" => Level::Debug as u8,
        _ => Level::Warn as u8,
    }
}

fn init_level() {
    LEVEL_INIT.get_or_init(|| {
        if let Ok(v) = std::env::var("BLEND_LOG") {
            MAX_LEVEL.store(parse_level(&v), Ordering::Relaxed);
        }
    });
}

/// Whether `level` would currently be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    init_level();
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Override the max level at runtime (tests; normally `BLEND_LOG`).
pub fn set_max_level(level: Option<Level>) {
    init_level();
    MAX_LEVEL.store(level.map_or(0, |l| l as u8), Ordering::Relaxed);
}

/// Emit one line to stderr: `[WARN module::path] message`. Called by the
/// macros after their level check.
pub fn log_emit(level: Level, module: &str, args: fmt::Arguments<'_>) {
    eprintln!("[{} {}] {}", level.tag(), module, args);
}

/// Log at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Error) {
            $crate::log::log_emit($crate::log::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Warn) {
            $crate::log::log_emit($crate::log::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Info) {
            $crate::log::log_emit($crate::log::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Log at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Debug) {
            $crate::log::log_emit($crate::log::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_grammar() {
        assert_eq!(parse_level("off"), 0);
        assert_eq!(parse_level("ERROR"), Level::Error as u8);
        assert_eq!(parse_level("warn"), Level::Warn as u8);
        assert_eq!(parse_level("Info"), Level::Info as u8);
        assert_eq!(parse_level("debug"), Level::Debug as u8);
        assert_eq!(parse_level("garbage"), Level::Warn as u8);
    }

    #[test]
    fn filtering_respects_max_level() {
        set_max_level(Some(Level::Warn));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        set_max_level(None);
        assert!(!log_enabled(Level::Error));
        set_max_level(Some(Level::Warn));
        crate::warn!("macro compiles and formats {} args", 1);
    }
}

//! # blend-obs — the unified observability layer
//!
//! Every layer of the BLEND reproduction — serving queue, admission
//! control, worker pool, SQL executors, plan executor, index builder —
//! reports into this one dependency-free crate. It provides three views
//! of the running system plus a logging facade, all built on `std` atomics
//! with no external crates (not even the vendored stubs), so it can sit
//! below everything else in the dependency graph:
//!
//! * **Metrics** ([`metrics`]) — a process-global registry of named
//!   [`Counter`]s, [`Gauge`]s, and log₂-bucketed latency [`Histogram`]s.
//!   The record path is lock-free (sharded atomics; no allocation, no
//!   mutex); locks exist only at registration and snapshot time.
//!   Snapshots export as Prometheus text ([`MetricsRegistry::render_prometheus`])
//!   or JSON ([`MetricsRegistry::render_json`]), and [`dump_if_enabled`]
//!   writes one to stderr when `BLEND_METRICS` is set.
//! * **Spans** ([`span`](mod@span)) — RAII wall-clock spans
//!   (`obs::span("join.build")`) collected per thread into a tree while a
//!   trace is active. The SQL engine opens a trace per query; executors
//!   add phase spans with attributes (rows, partitions, hash-table shape).
//! * **Profiles** ([`profile`]) — the span tree of one query rendered as
//!   an `EXPLAIN ANALYZE`-style [`Profile`] that rides
//!   `QueryReport::profile`, with a human-readable tree printer.
//! * **Logging** ([`log`](mod@log)) — `blend_obs::warn!`/`info!` macros,
//!   filtered by `BLEND_LOG` (`error|warn|info|debug`, default `warn`),
//!   replacing bare `eprintln!` diagnostics.
//!
//! ## Naming conventions
//!
//! Metric names are `snake_case`, prefixed with the owning subsystem:
//! `blend_serve_*`, `blend_admission_*`, `blend_pool_*`, `blend_sql_*`,
//! `blend_index_*`. Counters end in `_total`; durations are nanoseconds
//! and end in `_nanos`. Labels are rendered into the registered name
//! (`blend_sql_queries_total{path="positional"}`); the registry treats
//! the full rendered string as the key.
//!
//! ## Cardinality rules
//!
//! The registry is append-only for the life of the process, so labels
//! MUST come from small closed sets (executor path, outcome, phase name)
//! — never from user input, table names, or SQL text. Histograms take no
//! labels at all. Metrics are process-global: two `ServeQueue`s aggregate
//! into the same family, which is the intended fleet-level view.
//!
//! ## Overhead contract
//!
//! Instrumentation must never become the bottleneck it is meant to find:
//!
//! * Disabled ([`set_enabled`]`(false)`): every record path is one
//!   relaxed atomic load and a branch; spans return an inert guard.
//! * Enabled: counters/histograms are one relaxed `fetch_add` on a
//!   thread-sharded cache line; spans cost two `Instant` reads and a
//!   `Vec` push, and are placed at *phase* granularity (per scan, join
//!   build, probe, group), never per row or per morsel.
//!
//! The `filter_kernels` and `join_group` benches measure both modes and
//! assert the enabled/disabled median ratio stays under the budget, so a
//! regression in this contract fails CI rather than silently taxing every
//! query.
//!
//! ## Environment variables
//!
//! | Variable | Effect |
//! |---|---|
//! | `BLEND_METRICS` | unset/`0`/`off`: no dump. `json`: [`dump_if_enabled`] writes the JSON snapshot to stderr. Any other value: Prometheus text. |
//! | `BLEND_LOG` | Max log level for the facade: `error`, `warn` (default), `info`, `debug`, or `off`. |
//! | `BLEND_OBS` | `0`/`off` disables all instrumentation at startup (same as [`set_enabled`]`(false)`). |
//!
//! (`BLEND_THREADS`, `BLEND_MAX_CONCURRENT_GRANTS` are read by
//! `blend-parallel`; `BLEND_FAULTS` by `blend-serve`.)

pub mod log;
pub mod metrics;
pub mod profile;
pub mod span;

pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot,
};
pub use profile::{AttrValue, Profile, ProfileNode};
pub use span::{span, span_owned, trace_begin, SpanGuard, Trace};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(true);
static ENV_INIT: OnceLock<()> = OnceLock::new();

fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        if let Ok(v) = std::env::var("BLEND_OBS") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                ENABLED.store(false, Ordering::Relaxed);
            }
        }
    });
}

/// Whether instrumentation (metrics + spans) records anything.
///
/// One relaxed atomic load — this is the whole disabled-mode cost.
#[inline]
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Turn all instrumentation on or off at runtime.
///
/// Used by the bench harness to A/B the overhead contract; production
/// code leaves it enabled (the default).
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

/// Dump a metrics snapshot to stderr if `BLEND_METRICS` asks for one.
///
/// `json` selects [`MetricsRegistry::render_json`]; any other non-off
/// value selects [`MetricsRegistry::render_prometheus`]. Called by the
/// bench harness mains after their workload completes; tests and
/// long-running servers can call it at any quiesce point.
pub fn dump_if_enabled() {
    let Ok(v) = std::env::var("BLEND_METRICS") else {
        return;
    };
    let v = v.trim().to_ascii_lowercase();
    if v.is_empty() || v == "0" || v == "off" || v == "false" {
        return;
    }
    let out = if v == "json" {
        registry().render_json()
    } else {
        registry().render_prometheus()
    };
    eprintln!("{out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_gate_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
    }
}

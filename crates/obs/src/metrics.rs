//! Process-global metrics: counters, gauges, log₂ histograms.
//!
//! The hot path — [`Counter::add`], [`Gauge::add`], [`Histogram::record`]
//! — is lock-free: one relaxed `fetch_add` on a thread-sharded,
//! cache-line-aligned atomic. The registry's mutex is touched only when a
//! metric is first registered and when a snapshot/render walks the
//! families, so instrumented code never contends on a lock.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Shard count for counters/histograms. Eight 64-byte lines bound the
/// footprint while keeping simultaneous writers on distinct lines for
/// typical pool sizes.
const SHARDS: usize = 8;

/// One atomic on its own cache line, so shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Stable small index per thread, used to pick a shard.
static NEXT_THREAD_IDX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_IDX: usize = NEXT_THREAD_IDX.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn shard() -> usize {
    THREAD_IDX.with(|i| *i) % SHARDS
}

/// A small, dense id for the current thread — also used by spans to tag
/// which thread a span ran on without going through `ThreadId` formatting.
#[inline]
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_IDX.with(|i| *i) as u64
}

/// Monotonic counter, sharded across cache lines.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Add one. Lock-free; no-op while instrumentation is disabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`. Lock-free; no-op while instrumentation is disabled.
    #[inline]
    pub fn add(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.shards[shard()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Instantaneous signed value (queue depth, tokens in use).
///
/// A single atomic: gauges track small live populations, so contention is
/// negligible and a consistent up/down needs one cell.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    #[inline]
    pub fn add(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds values whose bit length is
/// `i` (bucket 0 holds exactly 0), i.e. `2^(i-1) <= v < 2^i`, with the
/// last bucket absorbing everything from `2^62` up.
pub const HIST_BUCKETS: usize = 64;

#[inline]
fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// One shard of a histogram: its own bucket array plus sum/count, all on
/// dedicated cache lines via the leading padded atomic.
struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: PaddedU64,
    count: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: PaddedU64::default(),
            count: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed latency histogram, sharded across cache-line-separated
/// bucket arrays. Values are whatever unit the caller records —
/// conventionally nanoseconds (`*_nanos` metric names).
#[derive(Default)]
pub struct Histogram {
    shards: [HistShard; 4],
}

impl Histogram {
    /// Record one observation. Lock-free: three relaxed `fetch_add`s on
    /// the calling thread's shard; no-op while disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let s = &self.shards[shard() % 4];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.0.fetch_add(v, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge all shards into one consistent-enough snapshot. (Concurrent
    /// writers may land between bucket and count reads; totals are exact
    /// once writers quiesce, which is when snapshots are taken.)
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        let mut sum = 0u64;
        let mut count = 0u64;
        for s in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(s.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(s.sum.0.load(Ordering::Relaxed));
            count += s.count.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum,
            count,
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile (`0.0..=1.0`): the inclusive upper bound of
    /// the first bucket whose cumulative count reaches `q * count`.
    /// Log₂ buckets make this exact to within 2× — plenty for p50/p99
    /// trend lines.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Everything a snapshot sees, keyed by full metric name (labels
/// rendered in). Produced by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value by full name, defaulting to 0 when never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Process-global registry of named metrics.
///
/// Names follow the crate-level conventions (see [`crate`] docs): labels
/// are rendered into the name (`...{path="positional"}`) and the full
/// string is the identity, so re-registering returns the same cells.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Get or create the counter named `name`. Callers cache the `Arc`
    /// (usually in a `OnceLock` bundle) so the hot path never locks.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.families.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.families.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Get or create the histogram named `name`. Histograms take no
    /// labels (cardinality rule — see crate docs).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.families.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Consistent point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut snap = Snapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Render the registry in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series (upper
    /// bounds are the log₂ bucket bounds), then `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let base = name.split('{').next().unwrap_or(name).to_string();
            if typed.insert(base.clone()) {
                let _ = writeln!(out, "# TYPE {base} {kind}");
            }
        };
        for (name, v) in &snap.counters {
            type_line(&mut out, name, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &snap.gauges {
            type_line(&mut out, name, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &snap.histograms {
            type_line(&mut out, name, "histogram");
            let mut cum = 0u64;
            let last_used = h
                .buckets
                .iter()
                .rposition(|&b| b > 0)
                .unwrap_or(0)
                .min(HIST_BUCKETS - 2);
            for (i, b) in h.buckets.iter().enumerate().take(last_used + 1) {
                cum += b;
                let le = bucket_upper_bound(i);
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }

    /// Render the registry as a JSON object (hand-built — the vendored
    /// serde is a stub, and this crate stays dependency-free anyway).
    /// Histograms include count/sum, p50/p90/p99, and the non-empty
    /// `[upper_bound, count]` bucket pairs.
    pub fn render_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &snap.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &snap.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{}\": {v}", escape_json(name));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &snap.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                escape_json(name),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            );
            let mut first_b = true;
            for (i, b) in h.buckets.iter().enumerate() {
                if *b == 0 {
                    continue;
                }
                if !first_b {
                    out.push(',');
                }
                first_b = false;
                let _ = write!(out, "[{}, {b}]", bucket_upper_bound(i));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The process-global registry every subsystem reports into.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        crate::set_enabled(true);
        let c = Counter::default();
        for _ in 0..100 {
            c.inc();
        }
        c.add(900);
        assert_eq!(c.get(), 1000);
    }

    #[test]
    fn gauge_tracks_up_and_down() {
        crate::set_enabled(true);
        let g = Gauge::default();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 4);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_buckets_conserve_count() {
        crate::set_enabled(true);
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets.iter().sum::<u64>(), 7);
        assert_eq!(s.sum, 1_001_006u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn extremes_land_in_terminal_buckets_without_overflow() {
        // `record(0)` must hit the first bucket and `record(u64::MAX)` the
        // last — the bit-length bucket map has no shift that could
        // overflow at either end, and this pins that.
        crate::set_enabled(true);
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 2);
        assert_eq!(s.count, 3);
        // The sum cell wraps rather than panics on overflow.
        assert_eq!(s.sum, u64::MAX.wrapping_add(u64::MAX));
        // Quantiles at the extremes resolve to the terminal bounds.
        assert_eq!(s.quantile(0.0), bucket_upper_bound(0));
        assert_eq!(s.quantile(1.0), u64::MAX);
        // And the boundary around the last bucket's lower edge is exact.
        assert_eq!(bucket_of((1u64 << 62) - 1), HIST_BUCKETS - 2);
        assert_eq!(bucket_of(1u64 << 62), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert!(bucket_upper_bound(bucket_of(700)) >= 700);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_from_log_buckets() {
        crate::set_enabled(true);
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert!(s.quantile(0.5) >= 10 && s.quantile(0.5) < 20);
        assert!(s.quantile(0.999) >= 1_000_000);
    }

    #[test]
    fn registry_same_name_same_cells() {
        let r = MetricsRegistry::default();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        crate::set_enabled(true);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn prometheus_render_shape() {
        crate::set_enabled(true);
        let r = MetricsRegistry::default();
        r.counter("a_total{k=\"v\"}").add(3);
        r.gauge("g").set(7);
        let h = r.histogram("lat_nanos");
        h.record(5);
        h.record(300);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total{k=\"v\"} 3"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("g 7"));
        assert!(text.contains("# TYPE lat_nanos histogram"));
        assert!(text.contains("lat_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_nanos_sum 305"));
        assert!(text.contains("lat_nanos_count 2"));
    }

    #[test]
    fn disabled_records_nothing() {
        let c = Counter::default();
        let h = Histogram::default();
        crate::set_enabled(false);
        c.inc();
        h.record(42);
        crate::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }
}

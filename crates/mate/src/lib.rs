//! MATE (Esmailoghli et al., VLDB 2022) — multi-attribute (composite-key)
//! join discovery, the baseline of the paper's Table V and the negative-
//! example task of Table III.
//!
//! The standalone pipeline, as in the original:
//!
//! 1. **Fetch** — probe the inverted index with the values of *one* query
//!    key column (the most selective one) to obtain candidate
//!    `(table, row)` pairs;
//! 2. **Filter** — check the remaining query-row values against the
//!    candidate row's XASH super key (bloom subset test), discarding rows
//!    that cannot align;
//! 3. **Validate** — fetch the actual lake row and verify every composite-
//!    key value is really present ("exact match validation").
//!
//! The crucial difference from BLEND's MC seeker (and the source of the
//! paper's Table V precision gap): MATE's SQL phase constrains only a
//! *single* column, so everything after relies on the 128-bit super key —
//! whereas BLEND's rewritten SQL joins index hits of *all* key columns on
//! `(TableId, RowId)` before the super key is even consulted. Both end at
//! 100% recall (bloom filters cannot produce false negatives); MATE simply
//! validates far more false candidates.

use blend_common::{FxHashMap, FxHashSet, TableId};
use blend_index::Xash;
use blend_lake::DataLake;

/// One candidate produced by the filter phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    table: u32,
    row: u32,
    /// Index of the query row whose key matched.
    query_row: u32,
}

/// Query outcome with the bookkeeping Table V reports.
#[derive(Debug, Clone, PartialEq)]
pub struct MateResult {
    /// Top-k tables with validated joinable-row counts.
    pub tables: Vec<(TableId, u32)>,
    /// Candidate rows that passed filtering and validated (true positives).
    pub tp: usize,
    /// Candidate rows that passed filtering but failed validation.
    pub fp: usize,
}

impl MateResult {
    /// Filter-phase precision, as defined in the paper's Table V.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }
}

/// The standalone MATE index.
pub struct MateIndex {
    /// Inverted index: value → (table, column, row).
    postings: FxHashMap<Box<str>, Vec<(u32, u32, u32)>>,
    /// Super keys per table, indexed by row id.
    superkeys: Vec<Vec<u128>>,
    value_bytes: usize,
}

impl MateIndex {
    /// Build from a lake.
    pub fn build(lake: &DataLake) -> Self {
        let mut postings: FxHashMap<Box<str>, Vec<(u32, u32, u32)>> = FxHashMap::default();
        let mut superkeys: Vec<Vec<u128>> = Vec::with_capacity(lake.len());
        let mut value_bytes = 0usize;

        for table in &lake.tables {
            let mut sks = vec![0u128; table.n_rows()];
            for (r, sk) in sks.iter_mut().enumerate() {
                let mut x = Xash::new();
                for v in table.row(r) {
                    if let Some(n) = v.normalized() {
                        x.add(&n);
                    }
                }
                *sk = x.finish();
            }
            for (ci, col) in table.columns.iter().enumerate() {
                for (ri, v) in col.values.iter().enumerate() {
                    if let Some(n) = v.normalized() {
                        let entry = postings.entry(n.as_ref().into());
                        if let std::collections::hash_map::Entry::Vacant(_) = entry {
                            value_bytes += n.len();
                        }
                        entry.or_default().push((table.id.0, ci as u32, ri as u32));
                    }
                }
            }
            superkeys.push(sks);
        }
        MateIndex {
            postings,
            superkeys,
            value_bytes,
        }
    }

    /// Pick the most selective query column: the one whose values have the
    /// smallest total posting length (MATE's initial-column heuristic).
    fn key_column(&self, rows: &[Vec<String>]) -> usize {
        let arity = rows.first().map_or(0, Vec::len);
        (0..arity)
            .min_by_key(|&c| {
                rows.iter()
                    .map(|r| self.postings.get(r[c].as_str()).map_or(0, Vec::len))
                    .sum::<usize>()
            })
            .unwrap_or(0)
    }

    /// Run the fetch→filter→validate pipeline. `lake` provides the raw
    /// tables for the validation phase (MATE keeps them external to the
    /// index, as the original does).
    pub fn query(&self, lake: &DataLake, rows: &[Vec<String>], k: usize) -> MateResult {
        if rows.is_empty() || rows[0].len() < 2 {
            return MateResult {
                tables: Vec::new(),
                tp: 0,
                fp: 0,
            };
        }
        let key_col = self.key_column(rows);

        // Fetch: candidate rows from the key column's postings, each with
        // the query rows whose key value produced it.
        let mut candidates: FxHashMap<(u32, u32), Vec<u32>> = FxHashMap::default();
        for (qr, row) in rows.iter().enumerate() {
            if let Some(ps) = self.postings.get(row[key_col].as_str()) {
                for &(t, _c, r) in ps {
                    let hyps = candidates.entry((t, r)).or_default();
                    if !hyps.contains(&(qr as u32)) {
                        hyps.push(qr as u32);
                    }
                }
            }
        }

        // Filter: XASH super-key subset test on the remaining columns. A
        // candidate row survives when at least one query-row hypothesis
        // passes the bloom test.
        let mut survivors: Vec<(Candidate, Vec<u32>)> = Vec::new();
        for ((t, r), hyps) in candidates {
            let sk = self.superkeys[t as usize][r as usize];
            let passing: Vec<u32> = hyps
                .into_iter()
                .filter(|&qr| {
                    let qrow = &rows[qr as usize];
                    let others = qrow
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != key_col)
                        .map(|(_, v)| v.as_str());
                    Xash::may_contain_all(sk, others)
                })
                .collect();
            if let Some(&first) = passing.first() {
                survivors.push((
                    Candidate {
                        table: t,
                        row: r,
                        query_row: first,
                    },
                    passing,
                ));
            }
        }

        // Validate: exact containment against the raw lake row. TP/FP are
        // counted per candidate *row*, the granularity of paper Table V.
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut joinable: FxHashMap<u32, FxHashSet<u32>> = FxHashMap::default();
        for (c, hyps) in &survivors {
            let table = lake.table(TableId(c.table));
            let row_vals: FxHashSet<String> = table
                .row(c.row as usize)
                .filter_map(|v| v.normalized().map(|n| n.into_owned()))
                .collect();
            let validated = hyps
                .iter()
                .any(|&qr| rows[qr as usize].iter().all(|v| row_vals.contains(v)));
            if validated {
                tp += 1;
                joinable.entry(c.table).or_default().insert(c.row);
            } else {
                fp += 1;
            }
        }

        let mut topk = blend_common::topk::TopK::new(k);
        for (t, rows) in joinable {
            topk.push(rows.len() as f64, t as u64, (TableId(t), rows.len() as u32));
        }
        MateResult {
            tables: topk.into_sorted().into_iter().map(|(_, x)| x).collect(),
            tp,
            fp,
        }
    }

    /// Estimated resident bytes (Table VIII input).
    pub fn size_bytes(&self) -> usize {
        let postings_bytes: usize = self
            .postings
            .values()
            .map(|p| p.len() * 12 + std::mem::size_of::<Vec<u32>>())
            .sum();
        let key_bytes = self.value_bytes + self.postings.len() * 24;
        let sk_bytes: usize = self.superkeys.iter().map(|s| s.len() * 16).sum();
        postings_bytes + key_bytes + sk_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blend_lake::ground_truth::exact_mc_join_counts;
    use blend_lake::web::{generate, WebLakeConfig};
    use blend_lake::workloads::mc_queries;

    fn lake() -> DataLake {
        generate(&WebLakeConfig {
            name: "mate-test".into(),
            n_tables: 60,
            rows: (10, 30),
            cols: (3, 5),
            vocab: 400,
            zipf_s: 1.0,
            numeric_col_ratio: 0.2,
            null_ratio: 0.0,
            seed: 99,
        })
    }

    #[test]
    fn finds_source_table_with_full_recall() {
        let lake = lake();
        let idx = MateIndex::build(&lake);
        for q in mc_queries(&lake, 6, 2, 5, 3) {
            // Unbounded k: the 100%-recall property says no joinable table
            // is *filtered away* (top-k truncation is a separate concern —
            // with Zipf-head values many tables out-join the small source).
            let res = idx.query(&lake, &q.rows, usize::MAX);
            assert!(
                res.tables.iter().any(|(t, _)| *t == q.source),
                "source table {:?} missing from {:?}",
                q.source,
                res.tables
            );
        }
    }

    #[test]
    fn validated_counts_match_ground_truth() {
        let lake = lake();
        let idx = MateIndex::build(&lake);
        for q in mc_queries(&lake, 5, 2, 4, 17) {
            let res = idx.query(&lake, &q.rows, usize::MAX);
            let gt = exact_mc_join_counts(&lake, &q.rows);
            for (t, n) in &res.tables {
                assert_eq!(
                    gt.get(t).copied().unwrap_or(0) as u32,
                    *n,
                    "table {t:?} count mismatch"
                );
            }
            // Recall: every ground-truth table with joinable rows appears.
            for t in gt.keys() {
                assert!(res.tables.iter().any(|(rt, _)| rt == t));
            }
        }
    }

    #[test]
    fn filter_produces_false_positives_validation_removes_them() {
        // The superkey filter alone must be imperfect (otherwise Table V
        // would be trivial); validation must fix precision to 1.0.
        let lake = lake();
        let idx = MateIndex::build(&lake);
        let mut total_fp = 0usize;
        for q in mc_queries(&lake, 10, 2, 6, 29) {
            let res = idx.query(&lake, &q.rows, 10);
            total_fp += res.fp;
            // Validated tables only contain truly joinable rows (checked
            // against ground truth above); fp counts the filter's slack.
        }
        assert!(
            total_fp > 0,
            "XASH filter unexpectedly perfect on this workload; \
             weaken the test lake if the hash was improved"
        );
    }

    #[test]
    fn degenerate_queries_are_rejected() {
        let lake = lake();
        let idx = MateIndex::build(&lake);
        let res = idx.query(&lake, &[], 5);
        assert!(res.tables.is_empty());
        let res = idx.query(&lake, &[vec!["single".into()]], 5);
        assert!(res.tables.is_empty());
    }

    #[test]
    fn key_column_prefers_selective_values() {
        let lake = lake();
        let idx = MateIndex::build(&lake);
        // Column 0: very frequent value; column 1: rare values.
        let rows = vec![
            vec!["v0".to_string(), "v399".to_string()],
            vec!["v1".to_string(), "v398".to_string()],
        ];
        assert_eq!(idx.key_column(&rows), 1);
    }

    #[test]
    fn size_accounting() {
        let lake = lake();
        let idx = MateIndex::build(&lake);
        assert!(idx.size_bytes() > 0);
    }
}

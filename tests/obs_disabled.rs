//! Observability kill switch: with collection disabled, queries produce
//! identical results and no profile, and metric cells stay frozen.
//!
//! Lives in its own integration binary (one process, one test) because
//! [`blend_obs::set_enabled`] is process-global — flipping it mid-run
//! would race any concurrently hammering metrics test.

use std::sync::Arc;

use blend_parallel::ParallelCtx;
use blend_sql::SqlEngine;
use blend_storage::{build_engine, EngineKind, FactRow};

#[test]
fn disabled_observability_yields_no_profile_and_frozen_metrics() {
    let mut rows = Vec::new();
    for t in 0..4u32 {
        for r in 0..20u32 {
            rows.push(FactRow::new(
                &format!("w{}", (t + r) % 5),
                t,
                0,
                r,
                r as u128,
                None,
            ));
        }
    }
    let fact = build_engine(EngineKind::Column, rows);
    let engine = SqlEngine::with_alltables(fact).with_parallel(Arc::new(ParallelCtx::sequential()));
    let sql = "SELECT TableId, COUNT(*) AS n FROM AllTables \
               GROUP BY TableId ORDER BY n DESC, TableId LIMIT 5";

    let (rs_on, report_on) = engine.execute_with_report(sql).expect("enabled run");
    assert!(
        report_on.profile.is_some(),
        "enabled runs collect a profile"
    );

    blend_obs::set_enabled(false);
    let queries_before = blend_obs::registry()
        .snapshot()
        .counter("blend_sql_queries_total{path=\"positional\"}");
    let (rs_off, report_off) = engine.execute_with_report(sql).expect("disabled run");
    let queries_after = blend_obs::registry()
        .snapshot()
        .counter("blend_sql_queries_total{path=\"positional\"}");
    blend_obs::set_enabled(true);

    assert_eq!(rs_on, rs_off, "observability must not change results");
    assert!(
        report_off.profile.is_none(),
        "disabled runs must not collect spans"
    );
    assert_eq!(
        queries_before, queries_after,
        "disabled runs must not move metric cells"
    );
}

//! Flat join/group parity: the positional executor's flat operators
//! (`blend_sql::hashtable`) must reproduce the retained map-based oracles
//! **byte-for-byte** — at the operator level against
//! `hashtable::oracle::{join_pairs, group_ids}` over random key arrays,
//! and end-to-end against the tuple executor across both storage engines ×
//! join/group key widths {1, 2, 4} × thread counts {1, 4, 8}.
//!
//! The thread sweep is the radix-partitioning contract: workers own
//! disjoint key partitions, per-group/per-key state sees the exact
//! sequential update sequence, and first-seen output order is recovered by
//! sorting on first-seen rows — so results (and logical telemetry) must be
//! identical at every thread count, including for float aggregates.

use blend_sql::hashtable::{oracle, GroupIndex, JoinKey, JoinTable};
use blend_sql::{ExecPath, ParallelCtx, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow};
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

// ---- operator-level parity -------------------------------------------------

/// Flat-table join: (probe row, build row) pairs in probe order.
fn flat_pairs<K: JoinKey>(build: &[K], probe: &[K]) -> Vec<(u32, u32)> {
    let table = JoinTable::build(build, None).unwrap();
    let mut out = Vec::new();
    for (i, &k) in probe.iter().enumerate() {
        for b in table.matches(build, k) {
            out.push((i as u32, b));
        }
    }
    out
}

/// Flat group index: (gid per row, first row per group) like the oracle.
fn flat_group_ids<K: JoinKey>(keys: &[K]) -> (Vec<u32>, Vec<u32>) {
    let mut index: GroupIndex<K> = GroupIndex::with_capacity(8).unwrap();
    let mut first_rows = Vec::new();
    let gids = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| {
            let before = index.len();
            let gid = index.insert_or_get(k).unwrap();
            if index.len() != before {
                first_rows.push(i as u32);
            }
            gid
        })
        .collect();
    (gids, first_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn flat_join_matches_map_oracle_u64(
        build in proptest::collection::vec(0u64..40, 0..200),
        probe in proptest::collection::vec(0u64..40, 0..200),
    ) {
        prop_assert_eq!(flat_pairs(&build, &probe), oracle::join_pairs(&build, &probe));
    }

    #[test]
    fn flat_join_matches_map_oracle_u128(
        // Wide keys with entropy in both halves of the u128.
        build in proptest::collection::vec((0u64..12, 0u64..5), 0..150),
        probe in proptest::collection::vec((0u64..12, 0u64..5), 0..150),
    ) {
        let widen = |v: &[(u64, u64)]| -> Vec<u128> {
            v.iter().map(|&(hi, lo)| ((hi as u128) << 96) | lo as u128).collect()
        };
        let (build, probe) = (widen(&build), widen(&probe));
        prop_assert_eq!(flat_pairs(&build, &probe), oracle::join_pairs(&build, &probe));
    }

    #[test]
    fn flat_group_index_matches_map_oracle(
        keys in proptest::collection::vec(any::<u64>(), 0..400),
        narrow in proptest::collection::vec(0u64..7, 0..400),
    ) {
        // Wide-spread and heavily-colliding key distributions.
        prop_assert_eq!(flat_group_ids(&keys), oracle::group_ids(&keys));
        prop_assert_eq!(flat_group_ids(&narrow), oracle::group_ids(&narrow));
    }
}

// ---- end-to-end parity -----------------------------------------------------

/// Deterministic fact rows: 3 columns per row (text key, numeric with
/// quadrant bits, extra text) so joins have fan-out and distinct counting
/// sees repeats.
fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            rows.push(FactRow::new(
                &format!("w{}", next() % vocab as u64),
                t,
                0,
                r,
                sk,
                None,
            ));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
            rows.push(FactRow::new(
                &format!("w{}", next() % vocab as u64),
                t,
                2,
                r,
                sk,
                None,
            ));
        }
    }
    rows
}

/// The query matrix: join key widths {1, 2, 4} (width 4 via a repeated
/// equality — the planner keeps duplicates, and the packed key stays
/// injective regardless) and group key widths {1, 2, 4}, plus a float AVG
/// that only the radix-partitioned group path can parallelize exactly.
fn queries() -> Vec<(&'static str, String)> {
    let join = |on: &str| {
        format!(
            "SELECT q0.TableId AS t, q0.ColumnId AS c0, q1.ColumnId AS c1, \
             q0.RowId AS r, COUNT(*) AS n, COUNT(DISTINCT q1.CellValue) AS s \
             FROM (SELECT * FROM AllTables WHERE RowId < 9) AS q0 INNER JOIN \
             (SELECT * FROM AllTables WHERE RowId < 9) AS q1 ON {on} \
             GROUP BY q0.TableId, q0.ColumnId, q1.ColumnId, q0.RowId \
             ORDER BY n DESC, t, c0, c1, r LIMIT 64"
        )
    };
    vec![
        ("join-w1", join("q0.RowId = q1.RowId")),
        (
            "join-w2",
            join("q0.TableId = q1.TableId AND q0.RowId = q1.RowId"),
        ),
        (
            "join-w4",
            join(
                "q0.TableId = q1.TableId AND q0.ColumnId = q1.ColumnId AND \
                 q0.RowId = q1.RowId AND q0.TableId = q1.TableId",
            ),
        ),
        (
            "group-w1",
            "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS s, COUNT(*) AS n, \
             MIN(RowId) AS lo, MAX(RowId) AS hi FROM AllTables GROUP BY TableId \
             ORDER BY s DESC, t"
                .to_string(),
        ),
        (
            "group-w2",
            "SELECT TableId AS t, ColumnId AS c, COUNT(DISTINCT CellValue) AS s \
             FROM AllTables WHERE RowId < 14 GROUP BY TableId, ColumnId \
             ORDER BY s DESC, t, c"
                .to_string(),
        ),
        (
            "group-w4",
            "SELECT TableId AS t, COUNT(*) AS n FROM AllTables \
             GROUP BY TableId, ColumnId, RowId, TableId ORDER BY n DESC, t LIMIT 40"
                .to_string(),
        ),
        (
            "group-float-avg",
            "SELECT TableId AS t, AVG(RowId) AS a, SUM(RowId / 2) AS s FROM AllTables \
             GROUP BY TableId ORDER BY t"
                .to_string(),
        ),
    ]
}

#[test]
fn flat_executor_is_byte_identical_across_stores_widths_and_threads() {
    let rows = fact_rows(7, 23, 9, 0xF1A7);
    for kind in [EngineKind::Row, EngineKind::Column] {
        // Reference: the tuple executor (the retained map-based oracle for
        // whole queries), strictly sequential.
        let reference = SqlEngine::with_alltables(build_engine(kind, rows.clone()))
            .with_parallel(Arc::new(ParallelCtx::sequential()));
        for (label, sql) in queries() {
            let (want, _) = reference
                .execute_with_report_path(&sql, ExecPath::TupleOnly)
                .unwrap();
            let mut logical_ref = None;
            for threads in THREAD_COUNTS {
                // Thresholds forced low so every phase takes its parallel
                // path even on this small lake.
                let eng = SqlEngine::with_alltables(build_engine(kind, rows.clone()))
                    .with_parallel(Arc::new(ParallelCtx::with_tuning(threads, 1, 5)));
                let (got, rep) = eng.execute_with_report_path(&sql, ExecPath::Auto).unwrap();
                assert_eq!(rep.path, "positional", "{kind:?}/{label}/{threads}t");
                assert_eq!(got, want, "{kind:?}/{label}/{threads}t vs tuple oracle");
                // Logical telemetry is thread-invariant.
                match &logical_ref {
                    None => logical_ref = Some(rep.clone()),
                    Some(first) => assert!(
                        rep.logical_eq(first),
                        "{kind:?}/{label}/{threads}t telemetry drift"
                    ),
                }
                // Flat-table telemetry was recorded for every join and
                // keyed group phase, with sane shapes.
                let expect_join = label.starts_with("join");
                assert_eq!(
                    rep.hash_tables.iter().any(|h| h.phase == "join"),
                    expect_join,
                    "{kind:?}/{label}/{threads}t join stats"
                );
                assert!(
                    rep.hash_tables.iter().any(|h| h.phase == "group"),
                    "{kind:?}/{label}/{threads}t group stats"
                );
                for h in &rep.hash_tables {
                    assert!(h.partitions >= 1);
                    assert!(h.buckets >= 1);
                    if threads > 1 {
                        assert!(
                            h.partitions > 1,
                            "{kind:?}/{label}/{threads}t: {} should radix-partition",
                            h.phase
                        );
                    }
                }
            }
        }
    }
}

/// Key packing must stay injective for the widths the executor admits:
/// distinct (TableId, ColumnId, RowId) triples joined on 3 keys match only
/// themselves — a packing collision would produce cross matches and break
/// the COUNT below.
#[test]
fn wide_key_self_join_counts_every_row_exactly_once() {
    let rows = fact_rows(5, 11, 6, 0xBEE);
    let n = rows.len();
    for kind in [EngineKind::Row, EngineKind::Column] {
        let eng = SqlEngine::with_alltables(build_engine(kind, rows.clone()));
        let (rs, rep) = eng
            .execute_with_report_path(
                "SELECT COUNT(*) AS n FROM \
                 (SELECT * FROM AllTables) AS q0 INNER JOIN (SELECT * FROM AllTables) AS q1 \
                 ON q0.TableId = q1.TableId AND q0.ColumnId = q1.ColumnId AND \
                 q0.RowId = q1.RowId",
                ExecPath::Auto,
            )
            .unwrap();
        assert_eq!(rep.path, "positional", "{kind:?}");
        // Each (table, column, row) cell is unique in this lake, so the
        // 3-key self join is exactly the identity.
        assert_eq!(rs.i64(0, "n"), Some(n as i64), "{kind:?}");
    }
}

//! Fingerprint ⇒ parity: the soundness property the serving tier's result
//! cache and in-flight coalescing rest on. If two SQL strings canonicalize
//! to the same [`QueryFingerprint`], executing either must produce
//! **byte-identical** result sets — otherwise a cache hit or a coalesced
//! delivery could hand one query another query's rows.
//!
//! The property is exercised over the spelling degrees of freedom the
//! canonicalizer claims to erase (and real seeker clients actually vary):
//!
//! * `IN`-list literal order and duplicated literals,
//! * conjunct order in `WHERE`,
//! * keyword/identifier case and whitespace,
//! * numeric literal spelling (`3` vs `3.0`, `-0.0` vs `0.0`),
//! * `IN ()` on a never-null id column vs an explicit `1 = 0`.
//!
//! Each case asserts both directions: the fingerprints are equal, and the
//! executed results are byte-identical (`ResultSet: PartialEq` compares
//! columns and every row value).

use proptest::prelude::*;

use std::sync::OnceLock;

use blend_sql::{fingerprint_sql, ResultSet, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow};

const VOCAB: u64 = 8;

fn engine() -> &'static SqlEngine {
    static ENGINE: OnceLock<SqlEngine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let mut rows = Vec::new();
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for t in 0..6u32 {
            for r in 0..30u32 {
                let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
                rows.push(FactRow::new(
                    &format!("w{}", next() % VOCAB),
                    t,
                    0,
                    r,
                    sk,
                    None,
                ));
                let num = next() % 50;
                rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 25)));
            }
        }
        SqlEngine::with_alltables(build_engine(EngineKind::Column, rows))
    })
}

/// Assert the two spellings fingerprint identically and execute
/// byte-identically.
fn assert_equivalent(a: &str, b: &str) -> ResultSet {
    let fa = fingerprint_sql(a).expect("query a fingerprints");
    let fb = fingerprint_sql(b).expect("query b fingerprints");
    assert_eq!(fa, fb, "fingerprints must match:\n  a: {a}\n  b: {b}");
    let ra = engine().execute(a).expect("query a executes");
    let rb = engine().execute(b).expect("query b executes");
    assert_eq!(
        ra, rb,
        "fingerprint-equal queries must return byte-identical results:\n  a: {a}\n  b: {b}"
    );
    ra
}

/// Deterministic Fisher–Yates driven by a proptest-chosen seed.
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        out.swap(
            i,
            (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) % (i as u64 + 1)) as usize,
        );
    }
    out
}

fn in_list(vals: &[u64]) -> String {
    vals.iter()
        .map(|v| format!("'w{v}'"))
        .collect::<Vec<_>>()
        .join(",")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shuffling the IN list, duplicating one literal, flipping conjunct
    /// order, and mangling keyword case must not change the fingerprint or
    /// the bytes — including for queries *without* ORDER BY, where row
    /// order falls out of the access path the planner picks.
    #[test]
    fn spelling_variants_execute_byte_identically(
        vals in proptest::collection::vec(0u64..VOCAB, 1..5),
        dup_idx in 0usize..4,
        rowid_bound in 1u32..30,
        seed in any::<u64>(),
        float_spelling in any::<bool>(),
        swap_conjuncts in any::<bool>(),
    ) {
        let canonical_vals: Vec<u64> = vals.clone();
        let mut variant_vals = shuffled(&vals, seed);
        // Duplicate literals are set-semantics in `IN`.
        variant_vals.push(variant_vals[dup_idx % variant_vals.len()]);

        let bound_a = format!("{rowid_bound}");
        let bound_b = if float_spelling {
            format!("{rowid_bound}.0")
        } else {
            bound_a.clone()
        };

        let a = format!(
            "SELECT TableId, RowId, CellValue FROM AllTables \
             WHERE CellValue IN ({}) AND RowId < {}",
            in_list(&canonical_vals), bound_a
        );
        let b = if swap_conjuncts {
            format!(
                "select tableid, rowid, cellvalue FROM alltables \
                 WHERE ROWID < {}   and CELLVALUE in ({})",
                bound_b, in_list(&variant_vals)
            )
        } else {
            format!(
                "select tableid, rowid, cellvalue from alltables \
                 where cellvalue IN ({})   AND rowid < {}",
                in_list(&variant_vals), bound_b
            )
        };
        assert_equivalent(&a, &b);
    }

    /// Same property through a grouped/ordered seeker shape (the paper's
    /// Listing-1 form), with a `TableId IN` rewrite conjunct thrown in.
    #[test]
    fn seeker_shape_variants_execute_byte_identically(
        vals in proptest::collection::vec(0u64..VOCAB, 1..5),
        tids in proptest::collection::vec(0i64..6, 1..4),
        seed in any::<u64>(),
    ) {
        let a = format!(
            "SELECT TableId, COUNT(DISTINCT CellValue) AS n FROM AllTables \
             WHERE CellValue IN ({}) AND TableId IN ({}) \
             GROUP BY TableId ORDER BY n DESC, TableId LIMIT 10",
            in_list(&vals),
            tids.iter().map(i64::to_string).collect::<Vec<_>>().join(",")
        );
        let shuffled_tids = shuffled(&tids, seed.rotate_left(7));
        let b = format!(
            "select TABLEID, count(distinct CellValue) AS n FROM AllTables \
             WHERE TableId IN ({}) AND CellValue IN ({}) \
             GROUP BY TableId ORDER BY n DESC, TableId LIMIT 10",
            shuffled_tids.iter().map(i64::to_string).collect::<Vec<_>>().join(","),
            in_list(&shuffled(&vals, seed))
        );
        assert_equivalent(&a, &b);
    }
}

/// `-0.0` and `0.0` are the same SQL value; the fingerprint must not split
/// them (IEEE bit patterns differ) and execution must agree.
#[test]
fn negative_zero_folds_to_zero() {
    let rs = assert_equivalent(
        "SELECT TableId FROM AllTables WHERE RowId < 5 AND TableId = 0.0 AND ColumnId = 0",
        "SELECT TableId FROM AllTables WHERE RowId < 5 AND TableId = -0.0 AND ColumnId = 0",
    );
    assert!(!rs.is_empty(), "table 0 rows exist below the bound");
}

/// An empty IN list on a never-null id column is unsatisfiable; spelling it
/// `1 = 0` is the same query and must share cache entries.
#[test]
fn empty_in_list_equals_false() {
    let rs = assert_equivalent(
        "SELECT TableId FROM AllTables WHERE TableId IN ()",
        "SELECT TableId FROM AllTables WHERE 1 = 0",
    );
    assert!(rs.is_empty(), "unsatisfiable predicate returns no rows");
}

/// Identifier case and whitespace are noise; `3` vs `3.0` is the same
/// rowid bound.
#[test]
fn case_whitespace_and_integral_floats_are_noise() {
    assert_equivalent(
        "SELECT TableId, RowId FROM AllTables WHERE RowId < 3 ORDER BY TableId, RowId LIMIT 12",
        "select   TABLEID, rowid from ALLTABLES where ROWID < 3.0 \
         order by tableid, ROWID limit 12",
    );
}

/// Distinct queries must stay distinct: a fingerprint that merged these
/// would poison the cache.
#[test]
fn semantically_different_queries_do_not_collide() {
    let pairs = [
        (
            "SELECT TableId FROM AllTables WHERE RowId < 3",
            "SELECT TableId FROM AllTables WHERE RowId < 4",
        ),
        (
            "SELECT TableId FROM AllTables WHERE CellValue IN ('w1')",
            "SELECT TableId FROM AllTables WHERE CellValue IN ('w1','w2')",
        ),
        (
            "SELECT TableId FROM AllTables WHERE RowId < 2 LIMIT 5",
            "SELECT TableId FROM AllTables WHERE RowId < 2 LIMIT 6",
        ),
    ];
    for (a, b) in pairs {
        let fa = fingerprint_sql(a).unwrap();
        let fb = fingerprint_sql(b).unwrap();
        assert_ne!(fa, fb, "distinct queries collided:\n  a: {a}\n  b: {b}");
    }
}

//! Observability layer invariants: metric conservation under concurrency
//! and the EXPLAIN ANALYZE profile tree on real queries.
//!
//! 1. **Conservation** — counters and histograms hammered from many
//!    threads lose no updates: the counter total, the histogram count,
//!    the bucket mass, and the value sum all equal what the writers
//!    recorded. Runs behind a watchdog so a lost wakeup or deadlock in
//!    the sharded cells shows up as a timeout, not a hung suite.
//! 2. **Parse-back** — the Prometheus text rendering round-trips: the
//!    `_total`, `_count`, and `+Inf` bucket lines parse back to exactly
//!    the in-process values.
//! 3. **Profile tree** — an SC-shaped query (scan → join build/probe →
//!    group) executed directly through [`SqlEngine`] carries a
//!    [`QueryProfile`] with the full span tree and non-zero timings, and
//!    direct calls get exec-time telemetry with zero queue wait.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use proptest::prelude::*;

use blend_parallel::ParallelCtx;
use blend_sql::SqlEngine;
use blend_storage::{build_engine, EngineKind, FactRow};

/// Watchdog budget for one hammer round.
const WATCHDOG: Duration = Duration::from_secs(20);

/// Unique metric names per proptest case so cases never share cells and
/// every assertion can be absolute instead of delta-based.
fn unique_name(prefix: &str) -> String {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    format!("{prefix}_{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Extract the value of the first rendered line whose name part equals
/// `name` (exact match on everything before the final space).
fn parse_line(rendered: &str, name: &str) -> Option<u64> {
    rendered.lines().find_map(|l| {
        let (n, v) = l.rsplit_once(' ')?;
        (n == name).then(|| v.parse().ok())?
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_hammer_conserves_counts(
        base in proptest::collection::vec(0u64..1_000_000, 1..200),
        extreme_picks in proptest::collection::vec(0usize..6, 0..6),
        threads in 2usize..6,
    ) {
        // Mix boundary values (0 → first bucket, u64::MAX → last, the
        // 2^62 edge of the overflow bucket) into every case: conservation
        // and the wrapping sum must hold at the extremes too.
        const EXTREMES: [u64; 6] =
            [0, 1, (1 << 62) - 1, 1 << 62, u64::MAX - 1, u64::MAX];
        let mut values = base;
        values.extend(extreme_picks.iter().map(|&i| EXTREMES[i]));
        let counter_name = unique_name("obs_test_hammer_total");
        let hist_name = unique_name("obs_test_hammer_nanos");
        let counter = blend_obs::registry().counter(&counter_name);
        let hist = blend_obs::registry().histogram(&hist_name);

        // Hammer behind a watchdog: all threads record every value.
        let (tx, rx) = mpsc::channel();
        {
            let values = values.clone();
            let (counter, hist) = (counter.clone(), hist.clone());
            std::thread::spawn(move || {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        let values = values.clone();
                        let (counter, hist) = (counter.clone(), hist.clone());
                        std::thread::spawn(move || {
                            for &v in &values {
                                counter.inc();
                                hist.record(v);
                            }
                        })
                    })
                    .collect();
                for w in workers {
                    w.join().expect("hammer thread panicked");
                }
                let _ = tx.send(());
            });
        }
        rx.recv_timeout(WATCHDOG).expect("metric hammer deadlocked");

        // Conservation: nothing lost, nothing invented.
        let expected_count = (threads * values.len()) as u64;
        let expected_sum = values
            .iter()
            .fold(0u64, |acc, &v| acc.wrapping_add(v))
            .wrapping_mul(threads as u64);
        prop_assert_eq!(counter.get(), expected_count);
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, expected_count);
        prop_assert_eq!(snap.sum, expected_sum);
        prop_assert_eq!(
            snap.buckets.iter().sum::<u64>(),
            expected_count,
            "bucket mass must equal the record count"
        );

        // Prometheus parse-back on the live registry rendering.
        let rendered = blend_obs::registry().render_prometheus();
        prop_assert_eq!(parse_line(&rendered, &counter_name), Some(expected_count));
        prop_assert_eq!(
            parse_line(&rendered, &format!("{hist_name}_count")),
            Some(expected_count)
        );
        prop_assert_eq!(
            parse_line(&rendered, &format!("{hist_name}_bucket{{le=\"+Inf\"}}")),
            Some(expected_count),
            "+Inf bucket must be cumulative over everything"
        );
    }
}

fn sc_engine() -> SqlEngine {
    let mut rows = Vec::new();
    for t in 0..6u32 {
        for r in 0..40u32 {
            let sk = ((t as u128) << 64) | r as u128;
            rows.push(FactRow::new(
                &format!("w{}", (t + r) % 7),
                t,
                0,
                r,
                sk,
                None,
            ));
            rows.push(FactRow::new(&(r % 10).to_string(), t, 1, r, sk, None));
        }
    }
    let fact = build_engine(EngineKind::Column, rows);
    SqlEngine::with_alltables(fact).with_parallel(Arc::new(ParallelCtx::sequential()))
}

/// The SC shape (Listing 1): index scan → self-join build/probe → grouped
/// aggregation. Its profile must contain the whole span tree with real
/// timings.
#[test]
fn sc_query_profile_has_full_span_tree() {
    let engine = sc_engine();
    let sql = "SELECT a.TableId, COUNT(DISTINCT a.CellValue) AS n FROM AllTables a \
               INNER JOIN AllTables b ON a.CellValue = b.CellValue \
               WHERE b.ColumnId = 0 GROUP BY a.TableId ORDER BY n DESC, a.TableId LIMIT 10";
    let (_, report) = engine.execute_with_report(sql).expect("SC query");

    let profile = report.profile.as_ref().expect("profile collected");
    assert_eq!(profile.root.name, "query");
    assert!(profile.root.nanos > 0, "root span must have wall time");
    assert_eq!(
        profile.root.attr("path").map(|a| a.to_string()).as_deref(),
        Some(report.path.as_str()),
        "root records which executor ran"
    );

    let scan = profile
        .find_prefix("scan:")
        .expect("scan span under the query root");
    assert!(scan.nanos > 0, "scan span must have wall time");
    assert!(scan.attr("rows").is_some(), "scan records emitted rows");
    for phase in ["join.build", "join.probe", "group"] {
        assert!(
            profile.find(phase).is_some(),
            "missing span `{phase}` in profile:\n{}",
            profile.render()
        );
    }

    // The tree printer shows every phase with a duration.
    let rendered = profile.render();
    for needle in ["query", "join.build", "join.probe", "group"] {
        assert!(rendered.contains(needle), "renderer lost `{needle}`");
    }

    // Direct (unqueued) execution still carries exec-time telemetry.
    let serving = report.serving.as_ref().expect("direct-call serving stats");
    assert_eq!(serving.outcome, "ok");
    assert_eq!(serving.queue_wait_nanos, 0, "no queue on the direct path");
    assert!(
        serving.exec_nanos > 0,
        "exec time measured from the root span"
    );
}

//! Serving-tier storm: liveness, typed outcomes, and parity under faults.
//!
//! The resilient serving tier's whole contract in one test: drive **2×
//! queue-depth offered load** through an undersized [`ServeQueue`] with
//! fault injection (delays, cancellations, poisoned requests) and assert
//!
//! 1. **Liveness** — the storm finishes under a watchdog; no deadlock, no
//!    ticket waits forever, serving threads survive poisoned requests.
//! 2. **Typed outcomes** — every submission resolves to exactly one of
//!    `Ok`, `Timeout`, `Cancelled`, `Overloaded` (shed at submit), or the
//!    poison error; nothing else escapes.
//! 3. **Bounded overshoot** — a request with a deadline resolves within
//!    deadline + a generous scheduling tolerance, never unboundedly late.
//! 4. **Parity** — every `Ok` result is byte-identical to the same query's
//!    sequential single-query reference run. Cancellation never corrupts:
//!    a query either completes exactly or returns no data.

use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use blend_common::BlendError;
use blend_parallel::{Deadline, ParallelCtx};
use blend_serve::{FaultAction, FaultPlan, ServeConfig, ServeQueue, SITE_DEQUEUE, SITE_EXEC};
use blend_sql::{ResultSet, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow};

/// Watchdog budget for the whole storm. A deadlock shows up as a timeout
/// here instead of a hung suite.
const WATCHDOG: Duration = Duration::from_secs(30);

/// Tolerance on deadline overshoot: covers the 10 ms admission poll
/// cadence, injected 5 ms delays, morsel granularity, and CI scheduling
/// noise with a wide margin.
const OVERSHOOT_TOLERANCE: Duration = Duration::from_secs(5);

fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            let key = format!("w{}", next() % vocab as u64);
            rows.push(FactRow::new(&key, t, 0, r, sk, None));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
        }
    }
    rows
}

/// Query mix covering scans, a self-join, and grouped aggregation — the
/// phases with distinct interrupt check sites.
fn queries(vocab: u32) -> Vec<String> {
    let in_list: Vec<String> = (0..4).map(|i| format!("'w{}'", i % vocab)).collect();
    vec![
        format!(
            "SELECT TableId, COUNT(DISTINCT CellValue) AS n FROM AllTables \
             WHERE CellValue IN ({}) GROUP BY TableId ORDER BY n DESC, TableId LIMIT 10",
            in_list.join(",")
        ),
        "SELECT TableId, RowId, CellValue FROM AllTables \
         WHERE ColumnId = 0 ORDER BY TableId, RowId, CellValue LIMIT 40"
            .to_string(),
        "SELECT a.TableId, COUNT(*) AS n FROM AllTables a \
         INNER JOIN AllTables b ON a.CellValue = b.CellValue \
         WHERE b.ColumnId = 0 GROUP BY a.TableId ORDER BY n DESC, a.TableId LIMIT 10"
            .to_string(),
        "SELECT TableId, ColumnId, COUNT(*) AS n FROM AllTables \
         GROUP BY TableId, ColumnId ORDER BY n DESC, TableId, ColumnId LIMIT 20"
            .to_string(),
    ]
}

fn storm_once(context: &str, faults: FaultPlan, tiny_deadlines: bool) {
    const DEPTH: usize = 4;
    const WAVES: usize = 4;

    let fact = build_engine(EngineKind::Column, fact_rows(5, 40, 6, 0x57012));
    let queries = queries(6);

    // Sequential single-query references: the parity oracle for Ok results.
    let reference =
        SqlEngine::with_alltables(fact.clone()).with_parallel(Arc::new(ParallelCtx::sequential()));
    let want: Vec<ResultSet> = queries
        .iter()
        .map(|sql| reference.execute(sql).expect("reference run"))
        .collect();

    // Undersized serving tier: 4-deep queue, 2 serving threads, 4 pool
    // threads with an admission budget of 2 — far less than offered load.
    let engine = Arc::new(
        SqlEngine::with_alltables(fact)
            .with_parallel(Arc::new(ParallelCtx::with_admission(4, 1, 32, 2))),
    );
    let queue = Arc::new(ServeQueue::new(
        engine,
        ServeConfig {
            depth: DEPTH,
            workers: 2,
            faults,
            // Cache budget honors BLEND_RESULT_CACHE_BYTES (the CI storm
            // runs with a deliberately tiny budget to force evictions).
            ..ServeConfig::default()
        },
    ));

    // Run the whole storm behind a watchdog channel; a deadlock anywhere
    // (queue, admission, pool, ticket wait) trips the timeout below.
    let (tx, rx) = mpsc::channel();
    let storm_queue = queue.clone();
    let storm_queries = queries.clone();
    let storm_want = want.clone();
    std::thread::spawn(move || {
        let (queries, want) = (storm_queries, storm_want);
        let mut ok = 0usize;
        let mut timeout = 0usize;
        let mut cancelled = 0usize;
        let mut overloaded = 0usize;
        let mut mem_exceeded = 0usize;
        let mut poisoned = 0usize;
        // Each wave offers 2× queue depth concurrently.
        for wave in 0..WAVES {
            let tickets: Vec<_> = (0..2 * DEPTH)
                .map(|i| {
                    let qi = (i + wave) % queries.len();
                    let budget = if tiny_deadlines && i % 3 == 0 {
                        // Tight budget: expires while queued or mid-phase.
                        Duration::from_millis(2)
                    } else {
                        Duration::from_secs(20)
                    };
                    let submitted = Instant::now();
                    let ticket = storm_queue.submit(&queries[qi], Deadline::after(budget));
                    (qi, submitted, budget, ticket)
                })
                .collect();
            for (qi, submitted, budget, ticket) in tickets {
                let outcome = match ticket {
                    Ok(t) => t.wait(),
                    Err(e) => Err(e),
                };
                let elapsed = submitted.elapsed();
                match outcome {
                    Ok((rs, report)) => {
                        ok += 1;
                        assert_eq!(
                            rs, want[qi],
                            "ok result diverged from the sequential reference"
                        );
                        let serving = report.serving.expect("serving telemetry");
                        assert!(
                            ["ok", "cache_hit", "coalesced_hit"]
                                .contains(&serving.outcome.as_str()),
                            "unexpected success outcome `{}`",
                            serving.outcome
                        );
                    }
                    Err(BlendError::Timeout(_)) => {
                        timeout += 1;
                        assert!(
                            elapsed <= budget + OVERSHOOT_TOLERANCE,
                            "deadline overshoot unbounded: budget {budget:?}, \
                             resolved after {elapsed:?}"
                        );
                    }
                    Err(BlendError::Cancelled(_)) => cancelled += 1,
                    Err(BlendError::Overloaded(_)) => overloaded += 1,
                    // Under a constrained BLEND_MEMORY_BUDGET (the CI
                    // storm) the governor may shed requests typed.
                    Err(BlendError::MemoryExceeded(_)) => mem_exceeded += 1,
                    Err(BlendError::SqlExec(m)) if m.contains("panicked") => poisoned += 1,
                    Err(other) => panic!("untyped storm outcome: {other}"),
                }
            }
        }
        let _ = tx.send((ok, timeout, cancelled, overloaded, mem_exceeded, poisoned));
    });

    let (ok, timeout, cancelled, overloaded, mem_exceeded, poisoned) = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{context}: serving storm deadlocked"));

    let total = ok + timeout + cancelled + overloaded + mem_exceeded + poisoned;
    assert_eq!(
        total,
        WAVES * 2 * DEPTH,
        "{context}: every submission must resolve exactly once"
    );
    // 2× depth offered instantaneously: some waves must shed unless the
    // servers drained implausibly fast; with zero-worker determinism tested
    // elsewhere, just require the storm produced real completions.
    assert!(ok > 0, "{context}: storm produced no successful results");

    // Accounting: the queue's counters agree with what the clients saw.
    let stats = queue.stats();
    assert_eq!(
        stats.shed as usize, overloaded,
        "{context}: shed accounting"
    );
    assert_eq!(
        stats.submitted as usize,
        total - overloaded,
        "{context}: submission accounting"
    );

    // The tier survives the storm: a fresh, fault-free-deadline request
    // still completes and matches its reference.
    let after = queue
        .submit(&queries[1], Deadline::after(Duration::from_secs(20)))
        .and_then(|t| t.wait());
    match after {
        Ok((rs, _)) => assert_eq!(rs, want[1], "{context}: post-storm result diverged"),
        // Injected faults may still fire on this request; any typed outcome
        // is acceptable, a hang or panic is not.
        Err(BlendError::Timeout(_))
        | Err(BlendError::Cancelled(_))
        | Err(BlendError::Overloaded(_))
        | Err(BlendError::MemoryExceeded(_)) => {}
        Err(BlendError::SqlExec(m)) if m.contains("panicked") => {}
        Err(other) => panic!("{context}: post-storm request failed oddly: {other}"),
    }
}

/// Clean storm: no faults, generous deadlines. Everything that is not shed
/// completes and matches its reference.
#[test]
fn storm_without_faults_completes_with_parity() {
    storm_once("clean", FaultPlan::none(), false);
}

/// Deadline storm: a third of the load carries a 2 ms budget through an
/// undersized queue, so requests expire queued, in admission, and
/// mid-execution — all must resolve as typed `Timeout` with no partial
/// results and bounded overshoot.
#[test]
fn storm_with_tiny_deadlines_times_out_cleanly() {
    storm_once("deadlines", FaultPlan::none(), true);
}

/// Full fault storm: scheduler delays, injected cancellations, poisoned
/// (panicking) requests, and tiny deadlines at once. The liveness
/// acceptance test for the serving tier.
#[test]
fn storm_with_injected_faults_stays_live() {
    let faults = FaultPlan::none()
        .with(
            SITE_DEQUEUE,
            FaultAction::Delay(Duration::from_millis(5)),
            3,
        )
        .with(SITE_EXEC, FaultAction::Cancel, 7)
        .with(SITE_EXEC, FaultAction::Poison, 11);
    storm_once("faults", faults, true);
}

/// The fault plan itself round-trips through the env grammar, so the CI
/// storm (`BLEND_FAULTS=...`) runs exactly what this test runs.
#[test]
fn fault_plan_env_grammar_matches_programmatic_plan() {
    let parsed = FaultPlan::parse("dequeue:delay:5@3,exec:cancel@7,exec:poison@11").unwrap();
    assert!(!parsed.is_empty());
    storm_once("env-faults", parsed, true);
}

/// Coalesced-group leader failure: a burst of fingerprint-equal requests
/// forms one in-flight group, the leader is killed mid-execution, and the
/// contract is that **every waiter still resolves typed** — the earliest
/// live waiter is promoted to re-execute, the rest are served from its
/// result, and nobody hangs (a stranded waiter shows up as the watchdog
/// timeout).
fn leader_failure_storm(context: &str, leader_fault: FaultAction) {
    const BURST: usize = 8;

    let fact = build_engine(EngineKind::Column, fact_rows(5, 40, 6, 0x57012));
    // The self-join: slow enough that the burst attaches to the leader's
    // group even without the injected delay below.
    let sql = queries(6)[2].clone();
    let reference =
        SqlEngine::with_alltables(fact.clone()).with_parallel(Arc::new(ParallelCtx::sequential()));
    let want = reference.execute(&sql).expect("reference run");

    // Hold the first execution at the exec site long enough for every
    // other submission to attach, then kill it. Both rules fire exactly
    // once, on the first SITE_EXEC visit — which is necessarily the
    // group's leader (waiters never reach the exec site).
    let faults = FaultPlan::none()
        .with(
            SITE_EXEC,
            FaultAction::Delay(Duration::from_millis(100)),
            1_000_000,
        )
        .with(SITE_EXEC, leader_fault, 1_000_000);
    let engine = Arc::new(
        SqlEngine::with_alltables(fact)
            .with_parallel(Arc::new(ParallelCtx::with_admission(4, 1, 32, 2))),
    );
    let queue = Arc::new(ServeQueue::new(
        engine,
        ServeConfig {
            depth: BURST,
            workers: 2,
            faults,
            result_cache_bytes: 1 << 20,
            coalesce: true,
        },
    ));

    let (tx, rx) = mpsc::channel();
    let storm_queue = queue.clone();
    let want_clone = want.clone();
    std::thread::spawn(move || {
        let tickets: Vec<_> = (0..BURST)
            .map(|_| {
                storm_queue
                    .submit(&sql, Deadline::after(Duration::from_secs(20)))
                    .expect("queue depth covers the whole burst")
            })
            .collect();
        let mut ok = 0usize;
        let mut leader_failures = 0usize;
        for t in tickets {
            match t.wait() {
                Ok((rs, report)) => {
                    ok += 1;
                    assert_eq!(rs, want_clone, "promoted/coalesced result diverged");
                    let serving = report.serving.expect("serving telemetry");
                    assert!(
                        ["ok", "cache_hit", "coalesced_hit"].contains(&serving.outcome.as_str()),
                        "unexpected success outcome `{}`",
                        serving.outcome
                    );
                }
                Err(BlendError::Cancelled(_)) => leader_failures += 1,
                Err(BlendError::SqlExec(m)) if m.contains("panicked") => leader_failures += 1,
                Err(other) => panic!("untyped outcome after leader failure: {other}"),
            }
        }
        let _ = tx.send((ok, leader_failures));
    });

    let (ok, leader_failures) = rx.recv_timeout(WATCHDOG).unwrap_or_else(|_| {
        panic!("{context}: leader-failure storm deadlocked — waiters stranded")
    });
    assert_eq!(
        leader_failures, 1,
        "{context}: exactly the killed leader fails"
    );
    assert_eq!(
        ok,
        BURST - 1,
        "{context}: every waiter resolves with the shared result"
    );
    let stats = queue.stats();
    assert!(
        stats.coalesced_hits >= 1,
        "{context}: burst never coalesced — promotion path untested ({stats:?})"
    );
}

/// Leader cancelled mid-flight (a user killing their own query must not
/// kill everyone coalesced behind it).
#[test]
fn cancelled_coalesced_leader_never_strands_waiters() {
    leader_failure_storm("leader-cancel", FaultAction::Cancel);
}

/// Leader poisoned (panicking) mid-flight: the panic resolves only the
/// leader's ticket; the group is promoted, not poisoned.
#[test]
fn poisoned_coalesced_leader_never_strands_waiters() {
    leader_failure_storm("leader-poison", FaultAction::Poison);
}

//! Full-pipeline integration tests: lake generation → offline indexing →
//! BLEND plans → results, across both storage engines.

use blend::{tasks, Blend, Combiner, Plan, Seeker};
use blend_common::TableId;
use blend_lake::web::{generate, WebLakeConfig};
use blend_lake::{ground_truth, workloads};
use blend_storage::EngineKind;

fn test_lake() -> blend_lake::DataLake {
    generate(&WebLakeConfig {
        name: "e2e".into(),
        n_tables: 60,
        rows: (10, 30),
        cols: (3, 5),
        vocab: 400,
        zipf_s: 1.0,
        numeric_col_ratio: 0.3,
        null_ratio: 0.02,
        seed: 1234,
    })
}

#[test]
fn sc_seeker_matches_exact_ground_truth_on_both_engines() {
    let lake = test_lake();
    for kind in [EngineKind::Row, EngineKind::Column] {
        let system = Blend::from_lake(&lake, kind);
        for (_, queries) in workloads::sc_queries(&lake, &[10, 40], 3, 7) {
            for q in queries {
                let mut plan = Plan::new();
                plan.add_seeker("sc", Seeker::sc(q.clone()), 10).unwrap();
                let hits = system.execute(&plan).unwrap();
                let gt = ground_truth::exact_sc_topk(&lake, &q, 10);
                assert_eq!(
                    hits.iter().map(|h| h.score as usize).collect::<Vec<_>>(),
                    gt.iter().map(|(_, o)| *o).collect::<Vec<_>>(),
                    "overlap sequence diverged from oracle ({kind:?})"
                );
                assert_eq!(
                    hits.iter().map(|h| h.table).collect::<Vec<_>>(),
                    gt.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
                );
            }
        }
    }
}

#[test]
fn kw_seeker_matches_exact_ground_truth() {
    let lake = test_lake();
    let system = Blend::from_lake(&lake, EngineKind::Column);
    for q in workloads::kw_queries(&lake, 4, 8, 11) {
        let mut plan = Plan::new();
        plan.add_seeker("kw", Seeker::kw(q.clone()), 10).unwrap();
        let hits = system.execute(&plan).unwrap();
        let gt = ground_truth::exact_kw_topk(&lake, &q, 10);
        assert_eq!(
            hits.iter()
                .map(|h| (h.table, h.score as usize))
                .collect::<Vec<_>>(),
            gt,
        );
    }
}

#[test]
fn mc_seeker_counts_match_exact_join_ground_truth() {
    let lake = test_lake();
    let system = Blend::from_lake(&lake, EngineKind::Column);
    for q in workloads::mc_queries(&lake, 5, 2, 5, 13) {
        let mut plan = Plan::new();
        plan.add_seeker("mc", Seeker::mc(q.rows.clone()), usize::MAX)
            .unwrap();
        let hits = system.execute(&plan).unwrap();
        let gt = ground_truth::exact_mc_join_counts(&lake, &q.rows);
        // Every reported table/count must be exactly right.
        for h in &hits {
            assert_eq!(
                gt.get(&h.table).copied().unwrap_or(0),
                h.score as usize,
                "joinable-row count wrong for {:?}",
                h.table
            );
        }
        // And no joinable table may be missed (bloom filters cannot create
        // false negatives).
        for t in gt.keys() {
            assert!(hits.iter().any(|h| h.table == *t), "missed {t:?}");
        }
    }
}

#[test]
fn correlation_seeker_recovers_planted_correlations() {
    let bench = blend_lake::corr_bench::generate(&blend_lake::CorrBenchConfig {
        name: "e2e-corr".into(),
        n_queries: 3,
        correlated_per_query: 8,
        rows: (60, 120),
        key_domain: 100,
        fraction_numeric_keys: 0.0,
        corr_levels: vec![0.95, 0.7, 0.4],
        noise_columns: 1,
        noise_tables: 8,
        seed: 55,
    });
    let system = Blend::from_lake(&bench.lake, EngineKind::Column);
    for q in &bench.queries {
        let mut plan = Plan::new();
        plan.add_seeker("c", Seeker::c(q.keys.clone(), q.target.clone()), 8)
            .unwrap();
        let hits = system.execute(&plan).unwrap();
        let gt: std::collections::HashSet<TableId> =
            blend_lake::corr_bench::exact_topk_tables(&bench.lake, q, 8, 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
        let hit_count = hits.iter().filter(|h| gt.contains(&h.table)).count();
        assert!(
            hit_count * 2 >= gt.len().min(8),
            "too few ground-truth tables recovered: {hit_count}/{}",
            gt.len()
        );
        // Scores are valid QCR magnitudes.
        for h in &hits {
            assert!((0.0..=1.0).contains(&h.score));
        }
    }
}

#[test]
fn union_search_plan_finds_cluster_mates() {
    let bench = blend_lake::union_bench::generate(&blend_lake::UnionBenchConfig {
        name: "e2e-union".into(),
        n_clusters: 4,
        tables_per_cluster: 6,
        rows: (10, 25),
        cols: 3,
        domain_size: 60,
        overlap: 0.6,
        confusable_pairs: 0,
        noise_tables: 10,
        seed: 77,
    });
    let system = Blend::from_lake(&bench.lake, EngineKind::Column);
    for q in &bench.queries {
        let plan = tasks::union_search(bench.lake.table(*q), 5, 60).unwrap();
        let hits = system.execute(&plan).unwrap();
        let gt = &bench.ground_truth[q];
        let good = hits
            .iter()
            .filter(|h| h.table != *q)
            .filter(|h| gt.contains(&h.table))
            .count();
        assert!(good >= 3, "union plan precision collapsed: {good}/5");
    }
}

#[test]
fn row_and_column_engines_agree_on_all_seekers() {
    let lake = test_lake();
    let row = Blend::from_lake(&lake, EngineKind::Row);
    let col = Blend::from_lake(&lake, EngineKind::Column);
    let mc = workloads::mc_queries(&lake, 1, 2, 4, 3).remove(0);
    let sc = workloads::sc_queries(&lake, &[15], 1, 4)
        .remove(0)
        .1
        .remove(0);

    let mut plan = Plan::new();
    plan.add_seeker("mc", Seeker::mc(mc.rows), 10).unwrap();
    plan.add_seeker("sc", Seeker::sc(sc), 10).unwrap();
    plan.add_combiner("both", Combiner::Union, 20, &["mc", "sc"])
        .unwrap();

    let a = row.execute(&plan).unwrap();
    let b = col.execute(&plan).unwrap();
    assert_eq!(
        a.iter().map(|h| h.table).collect::<Vec<_>>(),
        b.iter().map(|h| h.table).collect::<Vec<_>>()
    );
}

#[test]
fn shuffled_index_preserves_seeker_semantics() {
    // BLEND (rand) shuffles row order; overlap-based results must not
    // change (only RowId-sampled correlation differs).
    let lake = test_lake();
    let plain = Blend::from_lake(&lake, EngineKind::Column);
    let shuffled = Blend::from_lake_shuffled(&lake, EngineKind::Column, 99);
    let q = workloads::sc_queries(&lake, &[20], 1, 5)
        .remove(0)
        .1
        .remove(0);
    let mut plan = Plan::new();
    plan.add_seeker("sc", Seeker::sc(q), 10).unwrap();
    let a = plain.execute(&plan).unwrap();
    let b = shuffled.execute(&plan).unwrap();
    assert_eq!(
        a.iter()
            .map(|h| (h.table, h.score as i64))
            .collect::<Vec<_>>(),
        b.iter()
            .map(|h| (h.table, h.score as i64))
            .collect::<Vec<_>>()
    );
}

//! Property-based tests over the core invariants the system's correctness
//! rests on (DESIGN.md §8):
//!
//! * XASH subset property — a row's super key always "contains" each of the
//!   row's values;
//! * row-store/column-store equivalence under arbitrary fact rows and
//!   IN-list probes;
//! * QCR sign agreement with exact Pearson on linearly related data;
//! * Theorem 1 — the optimizer never changes a plan's output set.

use proptest::prelude::*;

use blend::{Blend, Combiner, Plan, Seeker};
use blend_common::{Column, Table, TableId, Value};
use blend_index::{xash_value, Xash};
use blend_lake::DataLake;
use blend_storage::{build_engine, EngineKind, FactRow};

/// Strategy: short lowercase-ish cell strings (the post-normalization
/// alphabet).
fn cell_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,12}( [a-z0-9]{1,8})?").expect("valid regex")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn xash_subset_property(values in proptest::collection::vec(cell_value(), 1..8)) {
        let sk = {
            let mut x = Xash::new();
            for v in &values {
                x.add(v);
            }
            x.finish()
        };
        for v in &values {
            prop_assert!(Xash::may_contain(sk, v), "value {v} escaped its own superkey");
        }
        prop_assert!(Xash::may_contain_all(sk, values.iter().map(String::as_str)));
    }

    #[test]
    fn xash_is_deterministic_and_nonzero(v in cell_value()) {
        prop_assert_eq!(xash_value(&v), xash_value(&v));
        prop_assert!(xash_value(&v) != 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_agree_on_postings_and_probes(
        raw in proptest::collection::vec(
            (cell_value(), 0u32..6, 0u32..3, 0u32..10, proptest::option::of(any::<bool>())),
            1..60,
        ),
        probe_vals in proptest::collection::vec(cell_value(), 1..6),
    ) {
        let rows: Vec<FactRow> = raw
            .iter()
            .map(|(v, t, c, r, q)| FactRow::new(v, *t, *c, *r, 0, *q))
            .collect();
        let row_store = build_engine(EngineKind::Row, rows.clone());
        let col_store = build_engine(EngineKind::Column, rows);
        prop_assert_eq!(row_store.len(), col_store.len());
        for pos in 0..row_store.len() {
            prop_assert_eq!(row_store.value_at(pos), col_store.value_at(pos));
            prop_assert_eq!(row_store.table_at(pos), col_store.table_at(pos));
            prop_assert_eq!(row_store.quadrant_at(pos), col_store.quadrant_at(pos));
        }
        for v in &probe_vals {
            prop_assert_eq!(row_store.postings(v), col_store.postings(v));
        }
        let refs: Vec<&str> = probe_vals.iter().map(String::as_str).collect();
        let rp = row_store.make_probe(&refs);
        let cp = col_store.make_probe(&refs);
        for pos in 0..row_store.len() {
            prop_assert_eq!(row_store.probe_at(pos, &rp), col_store.probe_at(pos, &cp));
        }
    }

    #[test]
    fn qcr_sign_agrees_with_pearson_on_linear_data(
        slope in -5.0f64..5.0,
        intercept in -100.0f64..100.0,
        n in 8usize..60,
    ) {
        prop_assume!(slope.abs() > 0.05);
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let qcr = blend_common::stats::qcr(&xs, &ys).unwrap();
        let pearson = blend_common::stats::pearson(&xs, &ys).unwrap();
        prop_assert!(qcr.signum() == pearson.signum(),
            "QCR {qcr} disagrees with Pearson {pearson}");
        // Near-perfect concordance. Not exactly 1.0: the observation at the
        // mean can land on different quadrant sides for x and y due to
        // floating-point rounding of the means, costing up to two pairs.
        let tolerance = 2.0 / n as f64;
        prop_assert!(qcr.abs() >= 1.0 - 2.0 * tolerance,
            "linear data must be near-perfectly concordant: {qcr} (n={n})");
    }
}

/// Build a small deterministic lake from proptest-chosen cells.
fn lake_from_cells(cells: Vec<Vec<String>>) -> DataLake {
    let tables: Vec<Table> = cells
        .into_iter()
        .enumerate()
        .map(|(i, vals)| {
            let n = vals.len();
            let col_a = Column::new(
                "a",
                vals.iter()
                    .map(|v| Value::Text(v.clone()))
                    .collect::<Vec<_>>(),
            );
            let col_b = Column::new(
                "b",
                (0..n)
                    .map(|r| Value::Int((i * 10 + r) as i64))
                    .collect::<Vec<_>>(),
            );
            Table::new(TableId(i as u32), format!("t{i}"), vec![col_a, col_b]).unwrap()
        })
        .collect();
    DataLake::new("prop", tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Theorem 1: optimized and naive execution produce identical result
    /// *sets* when k is non-binding.
    #[test]
    fn optimizer_preserves_output_sets(
        cells in proptest::collection::vec(
            proptest::collection::vec(cell_value(), 3..8),
            3..8,
        ),
        query_pick in any::<u64>(),
    ) {
        let lake = lake_from_cells(cells);
        // Query values sampled from the lake so intersections are non-trivial.
        let all_values: Vec<String> = lake
            .tables
            .iter()
            .flat_map(|t| t.columns[0].values.iter())
            .filter_map(|v| v.normalized().map(|c| c.into_owned()))
            .collect();
        prop_assume!(all_values.len() >= 4);
        let pick = |salt: u64| {
            let i = ((query_pick ^ salt) % all_values.len() as u64) as usize;
            all_values[i].clone()
        };
        let k = 1000; // non-binding

        let mut plan = Plan::new();
        plan.add_seeker("s1", Seeker::sc(vec![pick(1), pick(2)]), k).unwrap();
        plan.add_seeker("s2", Seeker::sc(vec![pick(3), pick(4), pick(5)]), k).unwrap();
        plan.add_seeker("s3", Seeker::sc(vec![pick(6)]), k).unwrap();
        plan.add_combiner("i", Combiner::Intersect, k, &["s1", "s2"]).unwrap();
        plan.add_combiner("d", Combiner::Difference, k, &["i", "s3"]).unwrap();

        let mut optimized = Blend::from_lake(&lake, EngineKind::Column);
        optimized.set_optimize(true);
        let mut naive = Blend::from_lake(&lake, EngineKind::Column);
        naive.set_optimize(false);

        let a: std::collections::BTreeSet<u32> = optimized
            .execute(&plan).unwrap().iter().map(|h| h.table.0).collect();
        let b: std::collections::BTreeSet<u32> = naive
            .execute(&plan).unwrap().iter().map(|h| h.table.0).collect();
        prop_assert_eq!(a, b, "optimizer altered the plan output (Theorem 1)");
    }

    /// Intersection commutativity: input order never changes the result set.
    #[test]
    fn intersection_is_commutative(
        cells in proptest::collection::vec(
            proptest::collection::vec(cell_value(), 3..6),
            3..6,
        ),
    ) {
        let lake = lake_from_cells(cells);
        let vals: Vec<String> = lake
            .tables
            .iter()
            .flat_map(|t| t.columns[0].values.iter())
            .filter_map(|v| v.normalized().map(|c| c.into_owned()))
            .take(6)
            .collect();
        prop_assume!(vals.len() >= 4);
        let blend = Blend::from_lake(&lake, EngineKind::Column);
        let k = 1000;

        let mut p1 = Plan::new();
        p1.add_seeker("a", Seeker::sc(vals[..2].to_vec()), k).unwrap();
        p1.add_seeker("b", Seeker::sc(vals[2..4].to_vec()), k).unwrap();
        p1.add_combiner("i", Combiner::Intersect, k, &["a", "b"]).unwrap();

        let mut p2 = Plan::new();
        p2.add_seeker("b", Seeker::sc(vals[2..4].to_vec()), k).unwrap();
        p2.add_seeker("a", Seeker::sc(vals[..2].to_vec()), k).unwrap();
        p2.add_combiner("i", Combiner::Intersect, k, &["b", "a"]).unwrap();

        let s1: std::collections::BTreeSet<u32> =
            blend.execute(&p1).unwrap().iter().map(|h| h.table.0).collect();
        let s2: std::collections::BTreeSet<u32> =
            blend.execute(&p2).unwrap().iter().map(|h| h.table.0).collect();
        prop_assert_eq!(s1, s2);
    }
}

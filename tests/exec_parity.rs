//! Cross-path × cross-engine parity: the positional (late-materialization)
//! executor must be selected for every seeker SQL shape and must produce
//! byte-identical `ResultSet`s — and identical scan/join telemetry — to the
//! tuple executor, on both storage engines.

use blend::plan::Seeker;
use blend::seekers::{self, Injected, TID_PLACEHOLDER};
use blend::Blend;
use blend_lake::web::{generate, WebLakeConfig};
use blend_lake::DataLake;
use blend_sql::ExecPath;
use blend_storage::EngineKind;

fn lake() -> DataLake {
    generate(&WebLakeConfig {
        name: "exec-parity".into(),
        n_tables: 60,
        rows: (10, 30),
        cols: (2, 5),
        vocab: 400,
        zipf_s: 1.0,
        numeric_col_ratio: 0.3,
        null_ratio: 0.02,
        seed: 20_260_731,
    })
}

/// Values drawn from the lake so every shape produces non-trivial results.
fn sample_values(lake: &DataLake, n: usize) -> Vec<String> {
    lake.tables
        .iter()
        .flat_map(|t| t.columns.iter())
        .flat_map(|c| c.values.iter())
        .filter_map(|v| v.normalized().map(|c| c.into_owned()))
        .filter(|v| v.parse::<f64>().is_err()) // text keys join more tables
        .take(n)
        .collect()
}

fn seeker_suite(lake: &DataLake) -> Vec<(&'static str, Seeker)> {
    let vals = sample_values(lake, 10);
    assert!(vals.len() >= 10, "lake must supply sample values");
    vec![
        ("sc", Seeker::sc(vals[..6].to_vec())),
        ("kw", Seeker::kw(vals[..6].to_vec())),
        (
            "mc",
            Seeker::mc(vec![
                vec![vals[0].clone(), vals[1].clone()],
                vec![vals[2].clone(), vals[3].clone()],
            ]),
        ),
        (
            "c",
            Seeker::c(vals[4..10].to_vec(), vec![3.0, 17.0, 5.0, 29.0, 11.0, 23.0]),
        ),
    ]
}

/// The injected-fragment variants the optimizer's rewriter produces.
fn fragments() -> Vec<(&'static str, String)> {
    vec![
        ("plain", String::new()),
        ("in", Injected::In(vec![1, 3, 5, 7, 11, 13]).fragment()),
        ("not-in", Injected::NotIn(vec![2, 4]).fragment()),
        ("in-empty", Injected::In(vec![]).fragment()),
    ]
}

#[test]
fn positional_path_is_selected_and_identical_for_all_seeker_shapes() {
    let lake = lake();
    for kind in [EngineKind::Row, EngineKind::Column] {
        let blend = Blend::from_lake(&lake, kind);
        for (label, seeker) in seeker_suite(&lake) {
            let template = seekers::seeker_sql(&seeker, 10, 64);
            for (frag_label, fragment) in fragments() {
                let sql = template.replace(TID_PLACEHOLDER, &fragment);
                let (rs_auto, rep_auto) = blend
                    .engine()
                    .execute_with_report_path(&sql, ExecPath::Auto)
                    .unwrap_or_else(|e| panic!("{label}/{frag_label} auto: {e}"));
                let (rs_tuple, rep_tuple) = blend
                    .engine()
                    .execute_with_report_path(&sql, ExecPath::TupleOnly)
                    .unwrap_or_else(|e| panic!("{label}/{frag_label} tuple: {e}"));

                assert_eq!(
                    rep_auto.path, "positional",
                    "{kind:?}/{label}/{frag_label}: seeker shapes must route positionally"
                );
                assert_eq!(rep_tuple.path, "tuple");
                assert_eq!(
                    rs_auto, rs_tuple,
                    "{kind:?}/{label}/{frag_label}: executors disagree"
                );
                // Telemetry parity: same access paths, visit counts, and
                // join cardinalities.
                assert_eq!(
                    rep_auto.scans, rep_tuple.scans,
                    "{kind:?}/{label}/{frag_label}"
                );
                assert_eq!(
                    rep_auto.joins, rep_tuple.joins,
                    "{kind:?}/{label}/{frag_label}"
                );
                assert_eq!(rep_auto.result_rows, rep_tuple.result_rows);
            }
        }
    }
}

#[test]
fn engines_agree_under_the_positional_path() {
    let lake = lake();
    let row = Blend::from_lake(&lake, EngineKind::Row);
    let col = Blend::from_lake(&lake, EngineKind::Column);
    for (label, seeker) in seeker_suite(&lake) {
        let sql = seekers::seeker_sql(&seeker, 10, 64).replace(TID_PLACEHOLDER, "");
        let (a, ra) = row
            .engine()
            .execute_with_report_path(&sql, ExecPath::Auto)
            .unwrap();
        let (b, rb) = col
            .engine()
            .execute_with_report_path(&sql, ExecPath::Auto)
            .unwrap();
        assert_eq!(ra.path, "positional", "{label}");
        assert_eq!(rb.path, "positional", "{label}");
        assert_eq!(a, b, "{label}: row and column stores disagree");
    }
}

/// Non-seeker SQL (expressions the positional evaluator cannot prove safe
/// or shapes with non-fact join keys) must fall back to the tuple path and
/// still return correct answers.
#[test]
fn unrecognized_shapes_fall_back_to_tuple() {
    let lake = lake();
    let blend = Blend::from_lake(&lake, EngineKind::Column);
    // Grouping on an expression (not a bare fact column) is not admitted.
    let sql = "SELECT TableId % 7, COUNT(*) AS n FROM AllTables GROUP BY TableId % 7";
    let (rs, report) = blend
        .engine()
        .execute_with_report_path(sql, ExecPath::Auto)
        .unwrap();
    assert_eq!(report.path, "tuple");
    assert!(!rs.is_empty());
    let (rs_forced, _) = blend
        .engine()
        .execute_with_report_path(sql, ExecPath::TupleOnly)
        .unwrap();
    assert_eq!(rs, rs_forced);
}

/// End-to-end: full seeker plans (including the optimizer's injections)
/// return the same hits regardless of which executor backs the SQL engine.
#[test]
fn seeker_runs_match_direct_sql_results() {
    let lake = lake();
    let blend = Blend::from_lake(&lake, EngineKind::Column);
    for (label, seeker) in seeker_suite(&lake) {
        let run = seekers::run(&blend, &seeker, 10, None, &blend::Interrupt::never()).unwrap();
        // The SQL recorded on the run, re-executed on both paths, agrees.
        let (a, _) = blend
            .engine()
            .execute_with_report_path(&run.sql, ExecPath::Auto)
            .unwrap();
        let (b, _) = blend
            .engine()
            .execute_with_report_path(&run.sql, ExecPath::TupleOnly)
            .unwrap();
        assert_eq!(a, b, "{label}");
    }
}

//! Cache invalidation under rebuild: swap the catalog mid-storm and prove
//! **no stale result is ever served**. The serving tier's result cache
//! keys on the engine's catalog generation, observed at dequeue; the swap
//! advances the generation *after* registering the new table, so every
//! request submitted after the swap returns must see post-rebuild data —
//! whether it executes fresh, coalesces, or hits the cache.
//!
//! The oracle: pre-rebuild rows carry the marker value `old`, post-rebuild
//! rows carry `new`. A storm of fingerprint-equal queries hammers the
//! queue while the main thread swaps the table; each storm result must be
//! homogeneous (one generation's rows, never a mix), and anything
//! submitted after the swap must be pure `new`. The whole run sits behind
//! the suite's 30 s watchdog so a stranded ticket fails loudly.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use blend_parallel::{Deadline, ParallelCtx};
use blend_serve::{FaultPlan, ServeConfig, ServeQueue};
use blend_sql::{SqlEngine, SqlValue};
use blend_storage::{build_engine, EngineKind, FactRow, FactTable};

const WATCHDOG: Duration = Duration::from_secs(30);

/// One generation of the fact table: every cell carries `marker` so a
/// result's provenance is visible in its bytes.
fn generation_fact(marker: &str) -> Arc<dyn FactTable> {
    let mut rows = Vec::new();
    for t in 0..4u32 {
        for r in 0..50u32 {
            let sk = ((t as u128) << 64) | r as u128;
            rows.push(FactRow::new(
                &format!("{marker}-{}", (t + r) % 5),
                t,
                0,
                r,
                sk,
                None,
            ));
        }
    }
    build_engine(EngineKind::Column, rows)
}

/// Which generation produced this result — `Err` if rows are mixed or
/// unrecognizable (both are correctness violations).
fn provenance(rows: &[Vec<SqlValue>]) -> Result<&'static str, String> {
    let mut saw_old = false;
    let mut saw_new = false;
    for row in rows {
        match &row[0] {
            SqlValue::Text(s) if s.starts_with("old-") => saw_old = true,
            SqlValue::Text(s) if s.starts_with("new-") => saw_new = true,
            other => return Err(format!("unrecognizable cell {other:?}")),
        }
    }
    match (saw_old, saw_new) {
        (true, true) => Err("mixed-generation result".into()),
        (false, true) => Ok("new"),
        _ => Ok("old"),
    }
}

#[test]
fn rebuild_mid_storm_never_serves_stale_results() {
    // Fingerprint-equal spellings: the storm exercises cache hits and
    // coalescing across the swap, not just fresh executions.
    let spellings = [
        "SELECT CellValue, TableId, RowId FROM AllTables \
         WHERE RowId < 40 ORDER BY CellValue, TableId, RowId LIMIT 60",
        "select cellvalue, tableid, rowid from alltables \
         where rowid < 40 order by cellvalue, tableid, rowid limit 60",
        "SELECT CellValue, TableId, RowId FROM AllTables \
         WHERE RowId < 40.0 ORDER BY CellValue, TableId, RowId LIMIT 60",
    ];

    let engine = Arc::new(
        SqlEngine::with_alltables(generation_fact("old"))
            .with_parallel(Arc::new(ParallelCtx::with_admission(4, 1, 32, 2))),
    );
    let queue = Arc::new(ServeQueue::new(
        engine.clone(),
        ServeConfig {
            depth: 64,
            workers: 2,
            faults: FaultPlan::none(),
            result_cache_bytes: 4 << 20,
            coalesce: true,
        },
    ));

    // Warm the cache so the swap demonstrably invalidates a *hot* entry.
    let (warm, report) = queue
        .submit(spellings[0], Deadline::after(Duration::from_secs(20)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(provenance(&warm.rows).unwrap(), "old");
    assert_eq!(report.serving.unwrap().outcome, "ok");
    assert!(queue.cached_results() >= 1, "warm-up populated the cache");

    // Storm: hammer fingerprint-equal spellings, recording each request's
    // submission time and the provenance of its bytes. The swap is
    // synchronized with storm progress (cache hits resolve in
    // microseconds, so a wall-clock sleep would let the whole storm
    // finish pre-swap): the storm runs until told to stop, and the main
    // thread stops it only after enough post-swap rounds have resolved.
    let rounds = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel();
    let storm_queue = queue.clone();
    let storm_rounds = rounds.clone();
    let storm_stop = stop.clone();
    let storm = std::thread::spawn(move || {
        let mut outcomes: Vec<(Instant, &'static str)> = Vec::new();
        while !storm_stop.load(Ordering::Acquire) {
            let round = storm_rounds.fetch_add(1, Ordering::AcqRel);
            let sql = spellings[round % spellings.len()];
            let submitted = Instant::now();
            let result = storm_queue
                .submit(sql, Deadline::after(Duration::from_secs(20)))
                .and_then(|t| t.wait());
            match result {
                Ok((rs, _)) => match provenance(&rs.rows) {
                    Ok(gen) => outcomes.push((submitted, gen)),
                    Err(e) => panic!("round {round}: corrupt result: {e}"),
                },
                Err(e) => panic!("round {round}: unexpected storm error: {e}"),
            }
        }
        let _ = tx.send(outcomes);
    });

    let wait_for_rounds = |target: usize| {
        let deadline = Instant::now() + WATCHDOG;
        while rounds.load(Ordering::Acquire) < target {
            assert!(
                Instant::now() < deadline,
                "storm stalled before reaching round {target}"
            );
            std::thread::yield_now();
        }
    };

    // Mid-storm rebuild: swap in the `new` generation. `replace_table`
    // registers the table first and bumps the generation after, so once
    // this call returns, every subsequent submission keys past the old
    // cache entries.
    wait_for_rounds(25);
    engine.replace_table("alltables", generation_fact("new"));
    let swap_done = Instant::now();
    let post_swap_target = rounds.load(Ordering::Acquire) + 100;
    wait_for_rounds(post_swap_target);
    stop.store(true, Ordering::Release);

    let outcomes = rx
        .recv_timeout(WATCHDOG)
        .expect("invalidation storm deadlocked");
    storm.join().expect("storm thread");

    let stale_after_swap = outcomes
        .iter()
        .filter(|(submitted, gen)| *submitted >= swap_done && *gen == "old")
        .count();
    assert_eq!(
        stale_after_swap, 0,
        "post-rebuild requests served pre-rebuild bytes"
    );
    let fresh = outcomes.iter().filter(|(_, gen)| *gen == "new").count();
    assert!(
        fresh > 0,
        "storm never observed the new generation (swap raced past the whole storm?)"
    );

    // And at quiesce: a fingerprint-equal request is served post-rebuild
    // data *from cache* — invalidation evicts stale entries, it does not
    // disable memoization.
    let (rs, report) = queue
        .submit(spellings[1], Deadline::after(Duration::from_secs(20)))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(provenance(&rs.rows).unwrap(), "new");
    let outcome = report.serving.unwrap().outcome;
    assert!(
        outcome == "cache_hit" || outcome == "ok",
        "post-swap steady state should memoize again, got `{outcome}`"
    );
}

//! Cross-system agreement tests: BLEND's operators versus the standalone
//! baselines they subsume (the paper's equivalence claims).

use blend::{Blend, Plan, Seeker};
use blend_josie::JosieIndex;
use blend_lake::web::{generate, WebLakeConfig};
use blend_lake::workloads;
use blend_mate::MateIndex;
use blend_storage::EngineKind;

fn lake() -> blend_lake::DataLake {
    generate(&WebLakeConfig {
        name: "parity".into(),
        n_tables: 70,
        rows: (10, 30),
        cols: (2, 5),
        vocab: 500,
        zipf_s: 1.0,
        numeric_col_ratio: 0.25,
        null_ratio: 0.02,
        seed: 4242,
    })
}

/// Paper §VIII-D: "BLEND and Josie achieve the same results as their
/// outputs are identical" — both compute exact top-k overlap.
#[test]
fn blend_sc_and_josie_outputs_are_identical() {
    let lake = lake();
    let blend = Blend::from_lake(&lake, EngineKind::Column);
    let josie = JosieIndex::build(&lake);
    for (_, queries) in workloads::sc_queries(&lake, &[8, 30, 80], 4, 21) {
        for q in queries {
            let mut plan = Plan::new();
            plan.add_seeker("sc", Seeker::sc(q.clone()), 10).unwrap();
            let blend_hits = blend.execute(&plan).unwrap();
            let josie_hits = josie.query(&q, 10);
            assert_eq!(
                blend_hits
                    .iter()
                    .map(|h| (h.table, h.score as u32))
                    .collect::<Vec<_>>(),
                josie_hits,
                "query {q:?}"
            );
        }
    }
}

/// Paper Table V: BLEND's MC filtering is strictly more precise than
/// MATE's single-column-probe + super-key filtering, at equal recall.
#[test]
fn blend_mc_has_higher_filter_precision_than_mate() {
    let lake = lake();
    let blend = Blend::from_lake(&lake, EngineKind::Column);
    let mate = MateIndex::build(&lake);

    let mut blend_candidates = 0usize;
    let mut blend_validated = 0usize;
    let mut mate_tp = 0usize;
    let mut mate_fp = 0usize;

    for q in workloads::mc_queries(&lake, 12, 2, 6, 33) {
        let mut plan = Plan::new();
        plan.add_seeker("mc", Seeker::mc(q.rows.clone()), usize::MAX)
            .unwrap();
        let (blend_hits, report) = blend.execute_with_report(&plan).unwrap();
        let stats = report.mc_totals();
        blend_candidates += stats.candidates;
        blend_validated += stats.validated;

        let mate_res = mate.query(&lake, &q.rows, usize::MAX);
        mate_tp += mate_res.tp;
        mate_fp += mate_res.fp;

        // Equal recall: identical validated table sets.
        let blend_tables: std::collections::BTreeSet<u32> =
            blend_hits.iter().map(|h| h.table.0).collect();
        let mate_tables: std::collections::BTreeSet<u32> =
            mate_res.tables.iter().map(|(t, _)| t.0).collect();
        assert_eq!(blend_tables, mate_tables, "recall parity broken");
    }

    let blend_precision = blend_validated as f64 / blend_candidates.max(1) as f64;
    let mate_precision = mate_tp as f64 / (mate_tp + mate_fp).max(1) as f64;
    assert!(
        blend_precision >= mate_precision,
        "BLEND {blend_precision:.3} must be at least MATE {mate_precision:.3}"
    );
    // True positives agree: both validate exactly.
    assert_eq!(blend_validated, mate_tp);
}

/// Correlation: BLEND's in-SQL QCR vs the sketch baseline on the
/// categorical benchmark — both should recover strong planted signals.
#[test]
fn blend_c_and_qcr_baseline_agree_on_strong_signals() {
    let bench = blend_lake::corr_bench::generate(&blend_lake::CorrBenchConfig {
        name: "parity-corr".into(),
        n_queries: 3,
        correlated_per_query: 6,
        rows: (80, 120),
        key_domain: 120,
        fraction_numeric_keys: 0.0,
        corr_levels: vec![0.95, 0.6, 0.2],
        noise_columns: 1,
        noise_tables: 8,
        seed: 91,
    });
    let blend = Blend::from_lake(&bench.lake, EngineKind::Column);
    let qcr = blend_qcr::QcrIndex::build(&bench.lake, 256);

    for q in &bench.queries {
        let mut plan = Plan::new();
        plan.add_seeker("c", Seeker::c(q.keys.clone(), q.target.clone()), 3)
            .unwrap();
        let blend_top: std::collections::HashSet<u32> = blend
            .execute(&plan)
            .unwrap()
            .iter()
            .map(|h| h.table.0)
            .collect();
        let qcr_top: std::collections::HashSet<u32> = qcr
            .query(&q.keys, &q.target, 3, 5)
            .iter()
            .map(|(t, _)| t.0)
            .collect();
        // The strongest planted table (rho=.95) must be found by both.
        let gt = blend_lake::corr_bench::exact_topk_tables(&bench.lake, q, 1, 5);
        let strongest = gt[0].0 .0;
        assert!(blend_top.contains(&strongest), "BLEND missed rho=0.95");
        assert!(qcr_top.contains(&strongest), "QCR baseline missed rho=0.95");
    }
}

/// The flexibility claim of Table VII: numeric join keys work in BLEND but
/// not in the sketch baseline.
#[test]
fn numeric_join_keys_work_in_blend_only() {
    let bench = blend_lake::corr_bench::generate(&blend_lake::CorrBenchConfig {
        name: "numeric-keys".into(),
        n_queries: 2,
        correlated_per_query: 6,
        rows: (80, 120),
        key_domain: 120,
        fraction_numeric_keys: 1.0,
        corr_levels: vec![0.95, 0.6],
        noise_columns: 1,
        noise_tables: 5,
        seed: 92,
    });
    let blend = Blend::from_lake(&bench.lake, EngineKind::Column);
    let qcr = blend_qcr::QcrIndex::build(&bench.lake, 256);

    for q in &bench.queries {
        let mut plan = Plan::new();
        plan.add_seeker("c", Seeker::c(q.keys.clone(), q.target.clone()), 5)
            .unwrap();
        let blend_hits = blend.execute(&plan).unwrap();
        assert!(
            !blend_hits.is_empty(),
            "BLEND must handle numeric join keys"
        );
        assert!(
            qcr.query(&q.keys, &q.target, 5, 5).is_empty(),
            "the sketch baseline cannot index numeric keys"
        );
    }
}

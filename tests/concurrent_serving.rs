//! Concurrent multi-query serving: stress & parity.
//!
//! The persistent worker pool serves many in-flight queries from one
//! machine-wide thread budget (admission control). This suite pins the two
//! contracts that design must never break:
//!
//! 1. **Parity under concurrency** — M OS threads firing K mixed
//!    seeker/SQL queries against one shared engine produce results
//!    **byte-identical** to each query's sequential single-query run, at
//!    every thread count and under admission budgets smaller than the
//!    offered load (phases silently degrade to fewer workers or the
//!    sequential fallback; the order-preserving merges make that invisible
//!    in the output).
//! 2. **Liveness and accounting** — random grant/release sequences never
//!    exceed the token budget and always drain (no lost wakeups, no
//!    deadlock), every recorded phase stays within its grant, and the
//!    budget is fully returned once the storm ends.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use blend::plan::Seeker;
use blend::seekers::{self, TID_PLACEHOLDER};
use blend_parallel::{Admission, ParallelCtx};
use blend_sql::{ExecPath, QueryReport, ResultSet, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow};
use proptest::prelude::*;

/// OS threads firing queries concurrently (the "M" of the suite).
const IN_FLIGHT: usize = 8;

/// Rounds each thread replays the whole query mix.
const ROUNDS: usize = 2;

/// Deterministic random-ish fact rows: `n_tables` tables, each with one
/// text key column, one numeric column with quadrant bits, and one extra
/// text column, sharing a `w{i}` vocabulary so seekers hit many tables.
fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — cheap, deterministic, good enough for test data.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            let key = format!("w{}", next() % vocab as u64);
            rows.push(FactRow::new(&key, t, 0, r, sk, None));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
            let extra = format!("w{}", next() % vocab as u64);
            rows.push(FactRow::new(&extra, t, 2, r, sk, None));
        }
    }
    rows
}

/// The mixed query set: all four seeker SQL shapes plus two ad-hoc SQL
/// queries (a broad grouped scan and a plain ordered selection), so the
/// storm covers the positional executor's scan/join/group phases *and* the
/// tuple path at once.
fn mixed_queries(vocab: u32) -> Vec<(&'static str, String)> {
    let w = |i: u32| format!("w{}", i % vocab);
    let vals: Vec<String> = (0..6).map(w).collect();
    let seeker_shapes = vec![
        ("sc", Seeker::sc(vals.clone())),
        ("kw", Seeker::kw(vals.clone())),
        ("mc", Seeker::mc(vec![vec![w(0), w(1)], vec![w(2), w(3)]])),
        ("c", Seeker::c(vals, vec![3.0, 17.0, 5.0, 29.0, 11.0, 23.0])),
    ];
    let mut queries: Vec<(&'static str, String)> = seeker_shapes
        .into_iter()
        .map(|(label, s)| {
            (
                label,
                seekers::seeker_sql(&s, 10, 8).replace(TID_PLACEHOLDER, ""),
            )
        })
        .collect();
    queries.push((
        "adhoc-group",
        "SELECT TableId, ColumnId, COUNT(*) AS n FROM AllTables \
         GROUP BY TableId, ColumnId ORDER BY n DESC, TableId, ColumnId LIMIT 20"
            .to_string(),
    ));
    queries.push((
        "adhoc-select",
        "SELECT TableId, RowId, CellValue FROM AllTables \
         WHERE RowId < 3 AND TableId NOT IN (1) \
         ORDER BY TableId, RowId, CellValue LIMIT 50"
            .to_string(),
    ));
    queries
}

/// Sequential single-query reference runs (the parity oracle).
fn reference_results(
    fact: &Arc<dyn blend_storage::FactTable>,
    queries: &[(&'static str, String)],
) -> Vec<(ResultSet, QueryReport)> {
    let engine =
        SqlEngine::with_alltables(fact.clone()).with_parallel(Arc::new(ParallelCtx::sequential()));
    queries
        .iter()
        .map(|(label, sql)| {
            engine
                .execute_with_report_path(sql, ExecPath::Auto)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
        })
        .collect()
}

/// Fire the whole query mix from `IN_FLIGHT` OS threads (each thread
/// rotates through the mix `ROUNDS` times starting at a different offset)
/// and assert every result byte-identical to its sequential reference.
/// Returns every recorded parallel phase's granted width for invariant
/// checks.
fn storm(
    engine: &SqlEngine,
    queries: &[(&'static str, String)],
    want: &[(ResultSet, QueryReport)],
    context: &str,
) -> Vec<usize> {
    let grants = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..IN_FLIGHT)
            .map(|worker| {
                scope.spawn(move || {
                    let mut grants = Vec::new();
                    for round in 0..ROUNDS {
                        for qi in 0..queries.len() {
                            // Offset per worker/round so different queries
                            // genuinely overlap in time.
                            let qi = (qi + worker + round) % queries.len();
                            let (label, sql) = &queries[qi];
                            let (got, rep) = engine
                                .execute_with_report_path(sql, ExecPath::Auto)
                                .unwrap_or_else(|e| panic!("{context}/{label}: {e}"));
                            let (want_rs, want_rep) = &want[qi];
                            assert_eq!(
                                &got, want_rs,
                                "{context}/{label}: concurrent result diverged from \
                                 the sequential single-query run"
                            );
                            assert!(
                                rep.logical_eq(want_rep),
                                "{context}/{label}: logical telemetry diverged"
                            );
                            grants.extend(rep.parallel.iter().map(|p| p.granted));
                        }
                    }
                    grants
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm worker panicked"))
            .collect::<Vec<usize>>()
    });
    grants
}

#[test]
fn concurrent_mixed_queries_match_sequential_across_thread_counts_and_budgets() {
    let rows = fact_rows(5, 28, 8, 0xC0C0);
    for kind in [EngineKind::Row, EngineKind::Column] {
        let fact = build_engine(kind, rows.clone());
        let queries = mixed_queries(8);
        let want = reference_results(&fact, &queries);

        for threads in [1usize, 2, 8] {
            // Budgets strictly smaller than the offered load: IN_FLIGHT
            // concurrent queries each ask for `threads - 1` tokens per
            // phase, so even the full-pool budget is contended.
            let budgets: &[usize] = match threads {
                1 => &[0],
                2 => &[1],
                _ => &[1, 2, 7],
            };
            for &budget in budgets {
                // Thresholds forced to 1 so the pool engages on
                // property-sized inputs (as in tests/parallel_parity.rs).
                let ctx = Arc::new(ParallelCtx::with_admission(threads, 1, 5, budget));
                let engine = SqlEngine::with_alltables(fact.clone()).with_parallel(ctx.clone());
                let context = format!("{kind:?}/{threads}t/budget{budget}");

                let grants = storm(&engine, &queries, &want, &context);

                for &granted in &grants {
                    assert!(
                        granted >= 2 && granted <= budget + 1 && granted <= threads,
                        "{context}: phase granted {granted} workers outside \
                         [2, min(budget+1, threads)]"
                    );
                }
                if threads == 1 || budget == 0 {
                    assert!(
                        grants.is_empty(),
                        "{context}: sequential config must record no pool phases"
                    );
                }

                // The storm drained: every token returned, workers parked
                // (not leaked), pool still serves a fresh query.
                assert_eq!(
                    ctx.admission().available(),
                    budget,
                    "{context}: outstanding admission tokens after drain"
                );
                assert_eq!(
                    ctx.pool().live_workers(),
                    threads - 1,
                    "{context}: parked worker count changed"
                );
                let (rs, _) = engine
                    .execute_with_report_path(&queries[0].1, ExecPath::Auto)
                    .unwrap();
                assert_eq!(rs, want[0].0, "{context}: engine unusable after storm");
            }
        }
    }
}

/// End-to-end seeker runs (SQL generation + application phases) through
/// one shared `Blend` system under concurrent fire agree with sequential
/// runs — the whole-system view of the same invariant.
#[test]
fn concurrent_end_to_end_seeker_runs_match_sequential() {
    let rows = fact_rows(5, 30, 8, 0xB1EBD);
    let fact = build_engine(EngineKind::Column, rows);
    let vals: Vec<String> = (0..5).map(|i| format!("w{i}")).collect();
    let seekers_under_test = vec![
        ("sc", Seeker::sc(vals.clone())),
        ("kw", Seeker::kw(vals.clone())),
        (
            "mc",
            Seeker::mc(vec![
                vec!["w0".into(), "w1".into()],
                vec!["w2".into(), "w3".into()],
            ]),
        ),
        ("c", Seeker::c(vals, vec![1.0, 9.0, 2.0, 8.0, 3.0])),
    ];

    let mut reference = blend::Blend::new(fact.clone());
    reference.set_parallel(Arc::new(ParallelCtx::sequential()));
    let hits = |run: &seekers::SeekerRun| -> Vec<(u32, f64)> {
        run.hits.iter().map(|h| (h.table.0, h.score)).collect()
    };
    let want: Vec<_> = seekers_under_test
        .iter()
        .map(|(label, s)| {
            let run = seekers::run(&reference, s, 10, None, &blend::Interrupt::never())
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            (run.sql.clone(), hits(&run))
        })
        .collect();

    // Shared system: 4 threads, admission budget 2 — less than the
    // IN_FLIGHT * 3 tokens of offered load.
    let mut shared = blend::Blend::new(fact);
    shared.set_parallel(Arc::new(ParallelCtx::with_admission(4, 1, 5, 2)));
    std::thread::scope(|scope| {
        for worker in 0..IN_FLIGHT {
            let shared = &shared;
            let seekers_under_test = &seekers_under_test;
            let want = &want;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    for si in 0..seekers_under_test.len() {
                        let si = (si + worker + round) % seekers_under_test.len();
                        let (label, seeker) = &seekers_under_test[si];
                        let got =
                            seekers::run(shared, seeker, 10, None, &blend::Interrupt::never())
                                .unwrap_or_else(|e| panic!("{label}: {e}"));
                        assert_eq!(got.sql, want[si].0, "{label}: generated SQL diverged");
                        assert_eq!(
                            hits(&got),
                            want[si].1,
                            "{label}: concurrent seeker hits diverged from sequential"
                        );
                    }
                }
            });
        }
    });
    assert_eq!(shared.parallel_ctx().admission().available(), 2);
}

/// Engines built with default configuration share **one** process-wide
/// context (pool + admission budget), and serving through it concurrently
/// stays byte-identical to sequential runs. Under CI this runs with
/// `BLEND_THREADS=4` and `BLEND_MAX_CONCURRENT_GRANTS=2` — forced
/// contention on the real shared pool; without those variables it
/// exercises the sequential default on a 1-core container.
#[test]
fn default_engines_share_one_process_pool_and_serve_consistently() {
    // Larger lake so default thresholds (min_parallel = 4096) still let
    // grouped phases reach the pool when the env enables threads.
    let rows = fact_rows(8, 450, 10, 0x5EED);
    for kind in [EngineKind::Row, EngineKind::Column] {
        let fact = build_engine(kind, rows.clone());
        let engine = SqlEngine::with_alltables(fact.clone());
        let peer = SqlEngine::with_alltables(fact.clone());
        // Exactly one pool per process: default construction always hands
        // back the same shared context.
        assert!(
            Arc::ptr_eq(engine.parallel_ctx(), peer.parallel_ctx()),
            "default engines must share the process context"
        );
        assert!(Arc::ptr_eq(
            engine.parallel_ctx().admission(),
            ParallelCtx::shared_from_env().admission()
        ));

        let queries = mixed_queries(10);
        let want = reference_results(&fact, &queries);
        let grants = storm(&engine, &queries, &want, &format!("{kind:?}/default"));
        let budget = engine.parallel_ctx().admission().budget();
        for &granted in &grants {
            assert!(granted <= budget + 1);
        }
        assert_eq!(engine.parallel_ctx().admission().available(), budget);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random admission grant/release storms: the number of concurrently
    /// held tokens never exceeds the budget, blocking acquires are always
    /// eventually satisfied (no lost wakeups / deadlock — enforced with a
    /// watchdog timeout), and the budget drains back to full.
    #[test]
    fn admission_grants_never_exceed_budget_and_always_drain(
        budget in 1usize..5,
        n_threads in 2usize..6,
        ops in 5usize..25,
        seed in any::<u64>(),
    ) {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let admission = Admission::new(budget);
            let outstanding = Arc::new(AtomicUsize::new(0));
            let max_seen = Arc::new(AtomicUsize::new(0));
            let mut joins = Vec::new();
            for t in 0..n_threads {
                let admission = admission.clone();
                let outstanding = outstanding.clone();
                let max_seen = max_seen.clone();
                joins.push(std::thread::spawn(move || {
                    let mut state =
                        (seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
                    let mut next = move || {
                        state ^= state >> 12;
                        state ^= state << 25;
                        state ^= state >> 27;
                        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
                    };
                    for _ in 0..ops {
                        let desired = (next() as usize % (budget + 2)) + 1;
                        let grant = if next() % 2 == 0 {
                            admission.acquire(desired)
                        } else {
                            admission.try_acquire(desired)
                        };
                        let now = outstanding.fetch_add(grant.tokens(), Ordering::SeqCst)
                            + grant.tokens();
                        max_seen.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        outstanding.fetch_sub(grant.tokens(), Ordering::SeqCst);
                        drop(grant);
                    }
                }));
            }
            for j in joins {
                j.join().expect("grant storm thread panicked");
            }
            let _ = tx.send((max_seen.load(Ordering::SeqCst), admission.available()));
        });

        // The watchdog: a lost wakeup or deadlock shows up as a timeout
        // here, not as a hung test suite.
        let (max_seen, available) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("admission storm deadlocked (lost wakeup?)");
        prop_assert!(
            max_seen <= budget,
            "held {max_seen} tokens concurrently on a budget of {budget}"
        );
        prop_assert_eq!(available, budget, "tokens leaked after drain");
    }

    /// Deadline-aware acquire against an exhausted budget: with every token
    /// held and the deadline already expired, `acquire_within` must return
    /// `Err(Timeout)` — never block forever (watchdog) and never leak a
    /// token, even when a release races the expiry.
    #[test]
    fn expired_deadline_acquire_always_times_out_and_never_leaks(
        budget in 1usize..5,
        desired in 1usize..8,
        racing_release in any::<bool>(),
        expiry_micros in 0u64..500,
    ) {
        use blend_parallel::{CancellationToken, Deadline, Interrupt};

        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let admission = Admission::new(budget);
            let held = admission.try_acquire(budget);
            assert_eq!(held.tokens(), budget, "failed to exhaust the budget");

            // A release racing the expired-deadline acquire must not let a
            // grant slip out after the deadline check.
            let releaser = racing_release.then(|| {
                let admission = admission.clone();
                std::thread::spawn(move || {
                    let refill = admission.try_acquire(0); // no-op grant
                    drop(refill);
                    std::thread::yield_now();
                })
            });

            let interrupt = Interrupt::new(
                CancellationToken::new(),
                Deadline::after(Duration::from_micros(expiry_micros)),
            );
            // Let sub-millisecond deadlines actually expire.
            std::thread::sleep(Duration::from_micros(expiry_micros + 1));
            let result = admission.acquire_within(desired, &interrupt);

            if let Some(r) = releaser {
                r.join().expect("racing releaser panicked");
            }
            let timed_out = matches!(result, Err(blend_common::BlendError::Timeout(_)));
            drop(result);
            drop(held);
            let _ = tx.send((timed_out, admission.available()));
        });

        let (timed_out, available) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("expired-deadline acquire hung (deadline ignored?)");
        prop_assert!(
            timed_out,
            "acquire_within on a full budget with an expired deadline must \
             return Err(Timeout)"
        );
        prop_assert_eq!(
            available, budget,
            "expired-deadline acquire leaked a grant"
        );
    }
}

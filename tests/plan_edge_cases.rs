//! Edge cases of the plan API and executor: degenerate inputs, deep DAGs,
//! k-limits, and rewriting corner cases.

use blend::{tasks, Blend, Combiner, Plan, Seeker};
use blend_common::{Column, Table, TableId, Value};
use blend_lake::DataLake;
use blend_storage::EngineKind;

fn small_lake() -> DataLake {
    let mk = |id: u32, vals: Vec<&str>, nums: Vec<i64>| {
        Table::new(
            TableId(id),
            format!("t{id}"),
            vec![
                Column::new("k", vals.into_iter().map(Value::from).collect::<Vec<_>>()),
                Column::new("n", nums.into_iter().map(Value::from).collect::<Vec<_>>()),
            ],
        )
        .unwrap()
    };
    DataLake::new(
        "edge",
        vec![
            mk(0, vec!["a", "b", "c", "d"], vec![1, 2, 3, 4]),
            mk(1, vec!["a", "b", "x", "y"], vec![4, 3, 2, 1]),
            mk(2, vec!["p", "q", "r", "s"], vec![9, 9, 9, 1]),
            mk(3, vec!["a", "q", "c", "y"], vec![2, 4, 6, 8]),
        ],
    )
}

fn system() -> Blend {
    Blend::from_lake(&small_lake(), EngineKind::Column)
}

#[test]
fn seeker_with_only_unknown_values_returns_empty() {
    let s = system();
    let mut p = Plan::new();
    p.add_seeker("sc", Seeker::sc(vec!["zzz".into(), "yyy".into()]), 5)
        .unwrap();
    assert!(s.execute(&p).unwrap().is_empty());
}

#[test]
fn k_one_returns_single_best() {
    let s = system();
    let mut p = Plan::new();
    p.add_seeker(
        "sc",
        Seeker::sc(vec!["a".into(), "b".into(), "c".into()]),
        1,
    )
    .unwrap();
    let hits = s.execute(&p).unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].table, TableId(0)); // overlap 3
    assert_eq!(hits[0].score, 3.0);
}

#[test]
fn difference_of_everything_is_empty() {
    let s = system();
    let mut p = Plan::new();
    let q = vec!["a".into(), "b".into()];
    p.add_seeker("x", Seeker::sc(q.clone()), 10).unwrap();
    p.add_seeker("y", Seeker::sc(q), 10).unwrap();
    p.add_combiner("d", Combiner::Difference, 10, &["x", "y"])
        .unwrap();
    assert!(s.execute(&p).unwrap().is_empty());
}

#[test]
fn deep_combiner_chain_executes() {
    // ((x ∩ y) ∪ z) \ w — four levels, mixed combiners.
    let s = system();
    let mut p = Plan::new();
    p.add_seeker("x", Seeker::sc(vec!["a".into()]), 10).unwrap(); // 0,1,3
    p.add_seeker("y", Seeker::sc(vec!["c".into()]), 10).unwrap(); // 0,3
    p.add_seeker("z", Seeker::sc(vec!["p".into()]), 10).unwrap(); // 2
    p.add_seeker("w", Seeker::sc(vec!["d".into()]), 10).unwrap(); // 0
    p.add_combiner("i", Combiner::Intersect, 10, &["x", "y"])
        .unwrap();
    p.add_combiner("u", Combiner::Union, 10, &["i", "z"])
        .unwrap();
    p.add_combiner("d", Combiner::Difference, 10, &["u", "w"])
        .unwrap();
    let ids: std::collections::BTreeSet<u32> =
        s.execute(&p).unwrap().iter().map(|h| h.table.0).collect();
    // (({0,1,3} ∩ {0,3}) ∪ {2}) \ {0} = {2, 3}.
    assert_eq!(ids, [2u32, 3].into_iter().collect());
}

#[test]
fn counter_over_single_input_is_identity_set() {
    let s = system();
    let mut p = Plan::new();
    p.add_seeker("x", Seeker::sc(vec!["a".into()]), 10).unwrap();
    p.add_combiner("c", Combiner::Counter, 10, &["x"]).unwrap();
    let hits = s.execute(&p).unwrap();
    assert_eq!(hits.len(), 3);
    assert!(hits.iter().all(|h| h.score == 1.0));
}

#[test]
fn mc_seeker_scores_count_joinable_rows() {
    let s = system();
    let mut p = Plan::new();
    p.add_seeker(
        "mc",
        Seeker::mc(vec![
            vec!["a".into(), "1".into()],
            vec!["b".into(), "2".into()],
        ]),
        10,
    )
    .unwrap();
    let hits = s.execute(&p).unwrap();
    // Table 0 rows (a,1) and (b,2) align exactly.
    assert_eq!(hits[0].table, TableId(0));
    assert_eq!(hits[0].score, 2.0);
}

#[test]
fn correlation_prefers_strong_negative_too() {
    // |QCR| ranks inverse correlation as strongly as positive.
    let s = system();
    let mut p = Plan::new();
    p.add_seeker(
        "c",
        Seeker::c(
            vec!["a".into(), "b".into(), "x".into(), "y".into()],
            vec![4.0, 3.0, 2.0, 1.0], // matches table 1's n inverted order
        ),
        2,
    )
    .unwrap();
    let hits = s.execute(&p).unwrap();
    assert!(!hits.is_empty());
    assert_eq!(hits[0].table, TableId(1));
    assert!(hits[0].score >= 0.9, "|QCR| {}", hits[0].score);
}

#[test]
fn union_search_task_on_tiny_table() {
    let lake = small_lake();
    let s = Blend::from_lake(&lake, EngineKind::Column);
    let plan = tasks::union_search(lake.table(TableId(0)), 3, 10).unwrap();
    let hits = s.execute(&plan).unwrap();
    // Table 0 must rank first (it matches itself on both columns).
    assert_eq!(hits[0].table, TableId(0));
    assert_eq!(hits[0].score, 2.0);
}

#[test]
fn reports_are_complete_and_ordered() {
    let s = system();
    let mut p = Plan::new();
    p.add_seeker("x", Seeker::sc(vec!["a".into()]), 10).unwrap();
    p.add_seeker("y", Seeker::sc(vec!["c".into()]), 10).unwrap();
    p.add_combiner("i", Combiner::Intersect, 10, &["x", "y"])
        .unwrap();
    let (_, report) = s.execute_with_report(&p).unwrap();
    // Two seekers + one combiner, combiner last.
    assert_eq!(report.ops.len(), 3);
    assert_eq!(report.ops.last().unwrap().id, "i");
    assert!(report.total >= report.ops.iter().map(|o| o.runtime).sum());
    // Seeker SQL is recorded for reproducibility.
    for op in &report.ops[..2] {
        assert!(op.sql.as_deref().unwrap().contains("SELECT"));
    }
}

#[test]
fn same_plan_is_deterministic_across_runs() {
    let s = system();
    let mut p = Plan::new();
    p.add_seeker(
        "x",
        Seeker::sc(vec!["a".into(), "c".into(), "q".into()]),
        10,
    )
    .unwrap();
    p.add_seeker("y", Seeker::kw(vec!["a".into(), "q".into()]), 10)
        .unwrap();
    p.add_combiner("u", Combiner::Union, 10, &["x", "y"])
        .unwrap();
    let a = s.execute(&p).unwrap();
    let b = s.execute(&p).unwrap();
    assert_eq!(
        a.iter()
            .map(|h| (h.table, h.score.to_bits()))
            .collect::<Vec<_>>(),
        b.iter()
            .map(|h| (h.table, h.score.to_bits()))
            .collect::<Vec<_>>()
    );
}

#[test]
fn row_engine_handles_all_tasks_too() {
    let lake = small_lake();
    let s = Blend::from_lake(&lake, EngineKind::Row);
    let plan = tasks::imputation(
        &[("a".into(), "1".into()), ("b".into(), "2".into())],
        &["c".into(), "d".into()],
        5,
    )
    .unwrap();
    let hits = s.execute(&plan).unwrap();
    assert_eq!(hits[0].table, TableId(0));
}

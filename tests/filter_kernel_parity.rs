//! Filter-kernel parity: the batched selection-vector kernels
//! (`FactTable::filter_batch` / `filter_range`) must reproduce the scalar
//! `fast_filters_pass` oracle **byte-for-byte** — for random `FastFilters`,
//! on both storage engines, over position lists and contiguous ranges, and
//! through the morsel-partitioned pool at thread counts {1, 4}.
//!
//! The scalar function stays alive in `blend_sql::plan` precisely to serve
//! as this suite's oracle; executors only ever run the compiled kernel.

use blend_parallel::{morselize, WorkerPool};
use blend_sql::plan::{fast_filters_pass, FastFilters};
use blend_sql::{ExecPath, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow, FactTable, ScanScratch};
use proptest::prelude::*;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Deterministic fact rows: `n_tables` tables × `rows_per` rows × 3 columns
/// (text key, numeric with quadrant bits, extra text), vocabulary `w0..wV`.
fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            rows.push(FactRow::new(
                &format!("w{}", next() % vocab as u64),
                t,
                0,
                r,
                sk,
                None,
            ));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
            rows.push(FactRow::new(
                &format!("w{}", next() % vocab as u64),
                t,
                2,
                r,
                sk,
                None,
            ));
        }
    }
    rows
}

/// Random `FastFilters` over a table: every predicate is independently
/// present/absent, and the id lists deliberately mix hits with misses
/// (values absent from the dictionary, table ids past the range directory).
#[allow(clippy::too_many_arguments)]
fn build_filters(
    table: &dyn FactTable,
    vocab: u32,
    value_sel: Option<(u64, usize)>,
    table_in: Option<Vec<u32>>,
    table_not_in: Option<Vec<u32>>,
    rowid_lt: Option<u32>,
    quadrant_null: Option<bool>,
) -> FastFilters {
    let value_probe = value_sel.map(|(seed, n)| {
        let vals: Vec<String> = (0..n as u64)
            .map(|i| {
                format!(
                    "w{}",
                    (seed.wrapping_mul(31).wrapping_add(i * 7)) % (vocab as u64 + 3)
                )
            })
            .collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        table.make_probe(&refs)
    });
    FastFilters {
        value_probe,
        table_set: table_in.map(|v| v.into_iter().collect()),
        table_not_set: table_not_in.map(|v| v.into_iter().collect()),
        rowid_lt,
        quadrant_null,
    }
}

/// Oracle: scalar `fast_filters_pass` over every position in `lo..hi`.
fn oracle_positions(table: &dyn FactTable, fast: &FastFilters, lo: usize, hi: usize) -> Vec<u32> {
    (lo..hi)
        .filter(|&p| fast_filters_pass(table, p, fast))
        .map(|p| p as u32)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_kernels_match_the_scalar_oracle(
        n_tables in 2u32..7,
        rows_per in 3u32..20,
        vocab in 3u32..12,
        seed in any::<u64>(),
        value_sel in proptest::option::of((any::<u64>(), 1usize..8)),
        table_in in proptest::option::of(proptest::collection::vec(0u32..9, 1..5)),
        table_not_in in proptest::option::of(proptest::collection::vec(0u32..9, 1..5)),
        rowid_lt in proptest::option::of(0u32..24),
        quadrant_null in proptest::option::of(proptest::prelude::any::<bool>()),
        subrange in (any::<u64>(), any::<u64>()),
    ) {
        let rows = fact_rows(n_tables, rows_per, vocab, seed);
        for kind in [EngineKind::Row, EngineKind::Column] {
            let table = build_engine(kind, rows.clone());
            let fast = build_filters(
                table.as_ref(),
                vocab,
                value_sel,
                table_in.clone(),
                table_not_in.clone(),
                rowid_lt,
                quadrant_null,
            );
            let kernel = fast.compile_kernel();
            let n = table.len();
            let want = oracle_positions(table.as_ref(), &fast, 0, n);

            // Batch over the full position list.
            let all: Vec<u32> = (0..n as u32).collect();
            let mut sel = Vec::new();
            table.filter_batch(&kernel, &all, &mut sel);
            prop_assert_eq!(&sel, &want, "{:?} filter_batch(full)", kind);

            // Range over the full table (no candidate list materialized).
            sel.clear();
            table.filter_range(&kernel, 0, n, &mut sel);
            prop_assert_eq!(&sel, &want, "{:?} filter_range(full)", kind);

            // A random sub-range and the matching batch slice agree with
            // the oracle restricted to that window.
            let (a, b) = (subrange.0 as usize % (n + 1), subrange.1 as usize % (n + 1));
            let (lo, hi) = (a.min(b), a.max(b));
            let want_window = oracle_positions(table.as_ref(), &fast, lo, hi);
            sel.clear();
            table.filter_range(&kernel, lo, hi, &mut sel);
            prop_assert_eq!(&sel, &want_window, "{:?} filter_range({}..{})", kind, lo, hi);
            sel.clear();
            table.filter_batch(&kernel, &all[lo..hi], &mut sel);
            prop_assert_eq!(&sel, &want_window, "{:?} filter_batch({}..{})", kind, lo, hi);

            // Postings-driven batch: candidates from the inverted index.
            let postings = table.postings(&format!("w{}", seed % vocab as u64));
            let want_postings: Vec<u32> = postings
                .iter()
                .copied()
                .filter(|&p| fast_filters_pass(table.as_ref(), p as usize, &fast))
                .collect();
            sel.clear();
            table.filter_batch(&kernel, postings, &mut sel);
            prop_assert_eq!(&sel, &want_postings, "{:?} filter_batch(postings)", kind);

            // Morsel-partitioned through the worker pool at 1 and 4
            // threads, with per-worker ScanScratch: concatenating the
            // per-morsel selection vectors in morsel order must reproduce
            // the sequential oracle list exactly.
            let morsels = morselize(&[n], 7);
            for threads in THREAD_COUNTS {
                let pool = WorkerPool::new(threads);
                let run = pool.run_with(morsels.len(), ScanScratch::default, |scratch, i| {
                    let m = &morsels[i];
                    scratch.sel.clear();
                    table.filter_range(&kernel, m.start, m.end, &mut scratch.sel);
                    scratch.sel.clone()
                });
                let merged: Vec<u32> = run.results.into_iter().flatten().collect();
                prop_assert_eq!(&merged, &want, "{:?} pooled {}t", kind, threads);
            }
        }
    }
}

/// End-to-end: a query exercising every fast-filter predicate at once runs
/// through the kernelized scan on both engines and both executor paths, at
/// thread counts {1, 4}, with identical results.
#[test]
fn kernelized_scans_are_engine_path_and_thread_invariant() {
    let rows = fact_rows(6, 24, 8, 0xB1E4D);
    let sql = "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
               WHERE CellValue IN ('w0','w2','w5','w9') AND TableId NOT IN (3) \
               AND RowId < 20 GROUP BY TableId, ColumnId ORDER BY score DESC, t";
    for kind in [EngineKind::Row, EngineKind::Column] {
        let reference = SqlEngine::with_alltables(build_engine(kind, rows.clone()))
            .with_parallel(Arc::new(blend_sql::ParallelCtx::with_tuning(1, 1, 3)));
        let (want, want_rep) = reference
            .execute_with_report_path(sql, ExecPath::TupleOnly)
            .unwrap();
        for threads in THREAD_COUNTS {
            let eng = SqlEngine::with_alltables(build_engine(kind, rows.clone()))
                .with_parallel(Arc::new(blend_sql::ParallelCtx::with_tuning(threads, 1, 3)));
            let (got, rep) = eng.execute_with_report_path(sql, ExecPath::Auto).unwrap();
            assert_eq!(rep.path, "positional", "{kind:?}/{threads}t");
            assert_eq!(
                got, want,
                "{kind:?}/{threads}t diverged from the tuple path"
            );
            assert_eq!(rep.scans, want_rep.scans, "{kind:?}/{threads}t telemetry");
        }
    }
}

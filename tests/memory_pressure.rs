//! Memory-governor pressure suite: byte-budgeted execution resolves every
//! request typed, degrades along the ladder, and never leaks reserved
//! bytes.
//!
//! The contract under test (see `blend_parallel::memory`):
//!
//! 1. **Typed outcomes** — under any byte budget, a query either completes
//!    or resolves `Err(BlendError::MemoryExceeded)`; nothing aborts, no
//!    partial results escape.
//! 2. **Invisible degradation** — results produced at narrowed or
//!    sequential ladder rungs are byte-identical to an unbudgeted run
//!    (the executor's partition-count invariance makes width changes
//!    unobservable in output).
//! 3. **Accounting** — reserved bytes never exceed the budget, drain to
//!    zero after every query, and the serving tier's outcome conservation
//!    identity extends with `mem_exceeded`.
//! 4. **Ladder coverage** — full → narrowed → sequential → typed shed all
//!    fire: real budgets exercise rungs 2–3, injected `alloc:fail` faults
//!    exercise rung 4 deterministically.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use blend_common::BlendError;
use blend_parallel::{
    reserve_laddered, Deadline, LadderRung, MemoryGovernor, ParallelCtx, QueryMemory,
};
use blend_serve::{FaultPlan, ServeConfig, ServeQueue};
use blend_sql::{ResultSet, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow, FactTable};

/// Watchdog budget for the storms. A deadlock (e.g. a reclaim pass
/// deadlocking against a cache shard lock) shows up as a timeout here
/// instead of a hung suite.
const WATCHDOG: Duration = Duration::from_secs(60);

fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            let key = format!("w{}", next() % vocab as u64);
            rows.push(FactRow::new(&key, t, 0, r, sk, None));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
        }
    }
    rows
}

/// Query mix covering the allocation-heavy phases: scan output, join
/// build + probe output, and grouped aggregation state.
fn queries(vocab: u32) -> Vec<String> {
    let in_list: Vec<String> = (0..4).map(|i| format!("'w{}'", i % vocab)).collect();
    vec![
        format!(
            "SELECT TableId, COUNT(DISTINCT CellValue) AS n FROM AllTables \
             WHERE CellValue IN ({}) GROUP BY TableId ORDER BY n DESC, TableId LIMIT 10",
            in_list.join(",")
        ),
        "SELECT TableId, RowId, CellValue FROM AllTables \
         WHERE ColumnId = 0 ORDER BY TableId, RowId, CellValue LIMIT 40"
            .to_string(),
        "SELECT a.TableId, COUNT(*) AS n FROM AllTables a \
         INNER JOIN AllTables b ON a.CellValue = b.CellValue \
         WHERE b.ColumnId = 0 GROUP BY a.TableId ORDER BY n DESC, a.TableId LIMIT 10"
            .to_string(),
        "SELECT TableId, ColumnId, COUNT(*) AS n FROM AllTables \
         GROUP BY TableId, ColumnId ORDER BY n DESC, TableId, ColumnId LIMIT 20"
            .to_string(),
    ]
}

fn storm_fact() -> Arc<dyn FactTable> {
    build_engine(EngineKind::Column, fact_rows(5, 40, 6, 0x9E377))
}

/// Unbudgeted sequential references: the parity oracle for `Ok` results.
/// Pinned to an explicitly unbounded governor so a `BLEND_MEMORY_BUDGET`
/// in the environment (as in CI's constrained steps) cannot starve the
/// oracle itself.
fn references(fact: &Arc<dyn FactTable>, queries: &[String]) -> Vec<ResultSet> {
    let ctx = ParallelCtx::sequential().with_governor(Arc::new(MemoryGovernor::unbounded()));
    let reference = SqlEngine::with_alltables(fact.clone()).with_parallel(Arc::new(ctx));
    queries
        .iter()
        .map(|sql| reference.execute(sql).expect("unbudgeted reference run"))
        .collect()
}

/// Engine charging a private governor (the env-configured global governor
/// is process-wide, so budgets under test must be private).
fn budgeted_engine(fact: &Arc<dyn FactTable>, gov: &Arc<MemoryGovernor>) -> Arc<SqlEngine> {
    let ctx = ParallelCtx::with_admission(4, 1, 32, 2).with_governor(gov.clone());
    Arc::new(SqlEngine::with_alltables(fact.clone()).with_parallel(Arc::new(ctx)))
}

/// Rungs 1–4 fire deterministically at the reservation API: full width,
/// narrowed, sequential, typed shed — with nothing leaked at any rung.
#[test]
fn every_ladder_rung_fires() {
    // cost(w) = w KiB: full 8 → 8 KiB, narrowed 4 → 4 KiB, seq → 1 KiB.
    let cost = |w: usize| w * 1024;
    let rungs = [
        (16 * 1024, 8, LadderRung::Full),
        (5 * 1024, 4, LadderRung::Narrowed),
        (2 * 1024, 1, LadderRung::Sequential),
    ];
    for (budget, want_width, want_rung) in rungs {
        let gov = Arc::new(MemoryGovernor::with_budget(budget));
        let qm = Arc::new(QueryMemory::new(gov.clone()));
        let (res, width, rung) = reserve_laddered(&qm, "storm_op", 8, cost).unwrap();
        assert_eq!(
            (width, rung),
            (want_width, want_rung),
            "budget {budget} should land on {want_rung:?}"
        );
        drop(res);
        assert_eq!(gov.reserved_bytes(), 0, "rung {want_rung:?} leaked bytes");
    }
    // Rung 4: even the sequential footprint does not fit.
    let gov = Arc::new(MemoryGovernor::with_budget(512));
    let qm = Arc::new(QueryMemory::new(gov.clone()));
    let err = reserve_laddered(&qm, "storm_op", 8, cost).unwrap_err();
    assert!(matches!(err, BlendError::MemoryExceeded(_)));
    assert_eq!(gov.stats().exceeded, 1);
    assert_eq!(gov.reserved_bytes(), 0, "shed rung leaked bytes");
}

/// Sweep budgets from comfortable to impossible at the engine level:
/// every run resolves typed, `Ok` results are byte-identical to the
/// unbudgeted reference, reservations drain to zero after every query,
/// and somewhere in the sweep the ladder demonstrably degraded
/// (narrowed or sequential) before budgets small enough to shed.
#[test]
fn budget_sweep_degrades_gracefully_with_parity() {
    let fact = storm_fact();
    let queries = queries(6);
    let want = references(&fact, &queries);

    let mut ok_under_budget = 0usize;
    let mut exceeded = 0usize;
    let mut degraded = false;
    for shift in [22usize, 16, 15, 14, 13, 12, 11, 10, 9, 8] {
        let budget = 1usize << shift;
        let gov = Arc::new(MemoryGovernor::with_budget(budget));
        let engine = budgeted_engine(&fact, &gov);
        for (qi, sql) in queries.iter().enumerate() {
            match engine.execute(sql) {
                Ok(rs) => {
                    ok_under_budget += 1;
                    assert_eq!(
                        rs, want[qi],
                        "budget {budget}: result diverged from unbudgeted reference"
                    );
                }
                Err(BlendError::MemoryExceeded(_)) => exceeded += 1,
                Err(other) => panic!("budget {budget}: untyped outcome {other}"),
            }
            assert!(
                gov.reserved_bytes() <= budget,
                "budget {budget}: accounting exceeded the budget"
            );
            assert_eq!(
                gov.reserved_bytes(),
                0,
                "budget {budget}: reservations must drain after each query"
            );
        }
        let stats = gov.stats();
        if stats.narrowed > 0 || stats.sequential_fallbacks > 0 {
            degraded = true;
        }
    }
    assert!(ok_under_budget > 0, "no query succeeded under any budget");
    assert!(exceeded > 0, "no budget was small enough to shed");
    assert!(
        degraded,
        "no budget exercised the narrowed/sequential rungs"
    );
}

/// The serving-tier storm under a tight byte budget: mixed waves through
/// an undersized queue, watchdog-guarded. Every request resolves typed,
/// `Ok` results match the unbudgeted references, the extended conservation
/// identity (`ok + cache_hit + coalesced_hit + timeout + cancelled +
/// mem_exceeded + failed == submitted`) holds post-storm, and the
/// governor's reserved-bytes gauge drains to zero once the queue is gone.
#[test]
fn storm_under_memory_budget_resolves_typed_with_conservation() {
    const DEPTH: usize = 4;
    const WAVES: usize = 4;
    const BUDGET: usize = 12 * 1024;

    let fact = storm_fact();
    let queries = queries(6);
    let want = references(&fact, &queries);

    let gov = Arc::new(MemoryGovernor::with_budget(BUDGET));
    let engine = budgeted_engine(&fact, &gov);
    let queue = Arc::new(ServeQueue::new(
        engine,
        ServeConfig {
            depth: DEPTH,
            workers: 2,
            // The cache pool is a child of the same budget: fills the
            // governor cannot fund are skipped, and reclaim evicts here.
            result_cache_bytes: 16 * 1024,
            coalesce: true,
            faults: FaultPlan::none(),
        },
    ));

    let (tx, rx) = mpsc::channel();
    let storm_queue = queue.clone();
    let storm_gov = gov.clone();
    let storm_queries = queries.clone();
    let storm_want = want.clone();
    std::thread::spawn(move || {
        let (queries, want) = (storm_queries, storm_want);
        let mut ok = 0usize;
        let mut shed = 0usize;
        let mut mem_exceeded = 0usize;
        for wave in 0..WAVES {
            let tickets: Vec<_> = (0..2 * DEPTH)
                .map(|i| {
                    let qi = (i + wave) % queries.len();
                    (qi, storm_queue.submit(&queries[qi], Deadline::none()))
                })
                .collect();
            for (qi, ticket) in tickets {
                let outcome = match ticket {
                    Ok(t) => t.wait(),
                    Err(e) => Err(e),
                };
                match outcome {
                    Ok((rs, _)) => {
                        ok += 1;
                        assert_eq!(
                            rs, want[qi],
                            "budgeted Ok result diverged from unbudgeted reference"
                        );
                    }
                    Err(BlendError::Overloaded(_)) => shed += 1,
                    Err(BlendError::MemoryExceeded(_)) => mem_exceeded += 1,
                    Err(other) => panic!("untyped storm outcome: {other}"),
                }
            }
            assert!(
                storm_gov.reserved_bytes() <= BUDGET,
                "accounted bytes exceeded the budget mid-storm"
            );
        }
        let _ = tx.send((ok, shed, mem_exceeded));
    });

    let (ok, shed, mem_exceeded) = rx
        .recv_timeout(WATCHDOG)
        .expect("memory-pressure storm deadlocked");
    assert_eq!(
        ok + shed + mem_exceeded,
        WAVES * 2 * DEPTH,
        "every submission must resolve exactly once"
    );
    assert!(ok > 0, "storm produced no successful results under budget");
    assert!(
        mem_exceeded > 0,
        "budget below the storm working set must shed at least one request \
         (ok {ok}, shed {shed}, mem_exceeded {mem_exceeded})"
    );

    // Extended conservation identity at quiesce, and client/queue
    // agreement on the mem_exceeded count.
    let s = queue.stats();
    assert_eq!(
        s.ok + s.cache_hits
            + s.coalesced_hits
            + s.timeouts
            + s.cancellations
            + s.mem_exceeded
            + s.failures,
        s.submitted,
        "outcome conservation identity violated: {s:?}"
    );
    assert_eq!(s.shed as usize, shed, "shed accounting");
    assert_eq!(
        s.mem_exceeded as usize, mem_exceeded,
        "mem_exceeded accounting"
    );

    // Post-storm: dropping the queue purges the cache pool; nothing may
    // remain charged against the budget.
    drop(queue);
    assert_eq!(
        gov.reserved_bytes(),
        0,
        "reserved bytes failed to drain to zero post-storm"
    );
}

/// Injected `alloc:fail` faults (rung-4 forcing: reclaim cannot rescue a
/// synthetic failure) drive typed `MemoryExceeded` outcomes through the
/// serving tier without any real budget, the conservation identity holds,
/// and the engine recovers to full service once disarmed.
#[test]
fn alloc_fault_storm_sheds_typed_and_recovers() {
    const DEPTH: usize = 8;
    const WAVES: usize = 3;

    let fact = storm_fact();
    let queries = queries(6);
    let want = references(&fact, &queries);

    let gov = Arc::new(MemoryGovernor::unbounded());
    let engine = budgeted_engine(&fact, &gov);
    // The env grammar round-trips: CI arms the same storm with
    // BLEND_FAULTS=alloc:fail@7.
    let faults = FaultPlan::parse("alloc:fail@7").unwrap();
    assert_eq!(faults.alloc_fail_every(), Some(7));
    let queue = Arc::new(ServeQueue::new(
        engine,
        ServeConfig {
            depth: DEPTH,
            workers: 2,
            result_cache_bytes: 1 << 20,
            coalesce: false,
            faults,
        },
    ));

    let (tx, rx) = mpsc::channel();
    let storm_queue = queue.clone();
    let storm_queries = queries.clone();
    let storm_want = want.clone();
    std::thread::spawn(move || {
        let (queries, want) = (storm_queries, storm_want);
        let mut ok = 0usize;
        let mut shed = 0usize;
        let mut mem_exceeded = 0usize;
        for wave in 0..WAVES {
            let tickets: Vec<_> = (0..DEPTH)
                .map(|i| {
                    let qi = (i + wave) % queries.len();
                    (qi, storm_queue.submit(&queries[qi], Deadline::none()))
                })
                .collect();
            for (qi, ticket) in tickets {
                let outcome = match ticket {
                    Ok(t) => t.wait(),
                    Err(e) => Err(e),
                };
                match outcome {
                    Ok((rs, _)) => {
                        ok += 1;
                        assert_eq!(rs, want[qi], "faulted Ok result diverged");
                    }
                    Err(BlendError::Overloaded(_)) => shed += 1,
                    Err(BlendError::MemoryExceeded(_)) => mem_exceeded += 1,
                    Err(other) => panic!("untyped fault-storm outcome: {other}"),
                }
            }
        }
        let _ = tx.send((ok, shed, mem_exceeded));
    });

    let (ok, shed, mem_exceeded) = rx
        .recv_timeout(WATCHDOG)
        .expect("alloc-fault storm deadlocked");
    assert_eq!(ok + shed + mem_exceeded, WAVES * DEPTH);
    assert!(
        mem_exceeded > 0,
        "alloc faults at rate 7 must shed at least one request"
    );
    assert!(
        gov.stats().reservation_fails > 0,
        "injected failures must be counted as reservation failures"
    );

    let s = queue.stats();
    assert_eq!(
        s.ok + s.cache_hits
            + s.coalesced_hits
            + s.timeouts
            + s.cancellations
            + s.mem_exceeded
            + s.failures,
        s.submitted,
        "conservation identity under injected alloc faults: {s:?}"
    );
    assert_eq!(s.mem_exceeded as usize, mem_exceeded);

    // Disarm and prove the tier recovered: a fresh request completes with
    // full parity (no lingering degradation, no leaked reservations).
    gov.set_alloc_fail_every(0);
    let (rs, _) = queue
        .submit(&queries[2], Deadline::none())
        .expect("post-storm submit")
        .wait()
        .expect("post-storm request must succeed once disarmed");
    assert_eq!(rs, want[2], "post-recovery result diverged");

    drop(queue);
    assert_eq!(gov.reserved_bytes(), 0, "reserved bytes drain to zero");
}

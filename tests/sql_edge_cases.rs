//! SQL engine edge-case battery: behaviours the seekers rely on implicitly
//! and that regressions would silently corrupt.

use std::sync::Arc;

use blend_sql::{SqlEngine, SqlValue};
use blend_storage::{build_engine, EngineKind, FactRow, FactTable};

/// Mini index: two tables. Table 0 has text col 0 and numeric col 1
/// (quadrants 0,0,1,1); table 1 shares two values with table 0.
fn fixture() -> Arc<dyn FactTable> {
    let mut rows = Vec::new();
    for (r, (v, q)) in [
        ("alpha", None),
        ("beta", None),
        ("gamma", None),
        ("delta", None),
    ]
    .into_iter()
    .enumerate()
    {
        rows.push(FactRow::new(v, 0, 0, r as u32, 0xA0 + r as u128, q));
    }
    for (r, q) in [false, false, true, true].into_iter().enumerate() {
        rows.push(FactRow::new(
            &format!("{}", 10 * (r + 1)),
            0,
            1,
            r as u32,
            0xA0 + r as u128,
            Some(q),
        ));
    }
    for (r, v) in ["alpha", "delta", "omega"].into_iter().enumerate() {
        rows.push(FactRow::new(v, 1, 0, r as u32, 0xB0 + r as u128, None));
    }
    // Table 2: numeric-only ballast, shares no values with the queries —
    // exactly what sideways pushdown should let joins skip.
    for r in 0..12u32 {
        rows.push(FactRow::new(
            &format!("{}", 1000 + r),
            2,
            0,
            r,
            0xC0 + r as u128,
            Some(r % 2 == 0),
        ));
    }
    build_engine(EngineKind::Column, rows)
}

fn engine() -> SqlEngine {
    SqlEngine::with_alltables(fixture())
}

#[test]
fn count_star_vs_count_column() {
    let e = engine();
    // COUNT(*) counts rows; COUNT(Quadrant) skips NULLs.
    let rs = e
        .execute("SELECT COUNT(*) AS all_rows, COUNT(Quadrant) AS numeric_rows FROM AllTables")
        .unwrap();
    assert_eq!(rs.i64(0, "all_rows"), Some(23));
    assert_eq!(rs.i64(0, "numeric_rows"), Some(16));
}

#[test]
fn global_aggregate_without_group_by() {
    let e = engine();
    let rs = e
        .execute("SELECT MIN(RowId) AS lo, MAX(RowId) AS hi, AVG(RowId) AS mid FROM AllTables WHERE TableId = 1")
        .unwrap();
    assert_eq!(rs.i64(0, "lo"), Some(0));
    assert_eq!(rs.i64(0, "hi"), Some(2));
    assert_eq!(rs.f64(0, "mid"), Some(1.0));
}

#[test]
fn global_aggregate_on_empty_input_returns_one_row() {
    let e = engine();
    let rs = e
        .execute("SELECT COUNT(*) AS n, SUM(RowId) AS s FROM AllTables WHERE TableId = 99")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.i64(0, "n"), Some(0));
    assert!(rs.rows[0][rs.col("s").unwrap()].is_null());
}

#[test]
fn group_by_expression_not_just_column() {
    let e = engine();
    // Group parity of RowId — exercises expression group keys.
    let rs = e
        .execute(
            "SELECT RowId % 2 AS parity, COUNT(*) AS n FROM AllTables \
             WHERE TableId = 0 GROUP BY RowId % 2 ORDER BY parity",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.i64(0, "n"), Some(4)); // rows 0 and 2, two columns each
    assert_eq!(rs.i64(1, "n"), Some(4));
}

#[test]
fn order_by_multiple_keys_and_direction() {
    let e = engine();
    let rs = e
        .execute(
            "SELECT TableId AS t, RowId AS r FROM AllTables WHERE ColumnId = 0 \
             AND TableId IN (0, 1) ORDER BY TableId DESC, RowId ASC",
        )
        .unwrap();
    let pairs: Vec<(i64, i64)> = (0..rs.len())
        .map(|i| (rs.i64(i, "t").unwrap(), rs.i64(i, "r").unwrap()))
        .collect();
    assert_eq!(
        pairs,
        vec![(1, 0), (1, 1), (1, 2), (0, 0), (0, 1), (0, 2), (0, 3)]
    );
}

#[test]
fn limit_zero_and_oversized() {
    let e = engine();
    let rs = e.execute("SELECT TableId FROM AllTables LIMIT 0").unwrap();
    assert!(rs.is_empty());
    let rs = e
        .execute("SELECT TableId FROM AllTables LIMIT 9999")
        .unwrap();
    assert_eq!(rs.len(), 23);
}

#[test]
fn self_join_on_rowid_respects_null_keys() {
    let e = engine();
    // Join text cells to numeric cells of the same row in table 0.
    let rs = e
        .execute(
            "SELECT a.CellValue AS word, b.CellValue AS num FROM \
             (SELECT * FROM AllTables WHERE TableId = 0 AND ColumnId = 0) a \
             INNER JOIN (SELECT * FROM AllTables WHERE TableId = 0 AND ColumnId = 1) b \
             ON a.RowId = b.RowId AND a.TableId = b.TableId \
             ORDER BY b.RowId",
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    assert_eq!(rs.str(0, "word"), Some("alpha"));
    assert_eq!(rs.str(0, "num"), Some("10"));
}

#[test]
fn join_residual_predicates_filter() {
    let e = engine();
    // Non-equi residual in ON: only pairs with different column ids.
    let rs = e
        .execute(
            "SELECT COUNT(*) AS n FROM \
             (SELECT * FROM AllTables WHERE TableId = 0) a \
             INNER JOIN (SELECT * FROM AllTables WHERE TableId = 0) b \
             ON a.RowId = b.RowId AND a.ColumnId <> b.ColumnId",
        )
        .unwrap();
    // 4 rows x 2 ordered (col0,col1)/(col1,col0) pairs.
    assert_eq!(rs.i64(0, "n"), Some(8));
}

#[test]
fn quadrant_comparisons_coerce_bool_to_int() {
    let e = engine();
    let rs = e
        .execute("SELECT COUNT(*) AS n FROM AllTables WHERE Quadrant = 1 AND TableId = 0")
        .unwrap();
    assert_eq!(rs.i64(0, "n"), Some(2));
    let rs = e
        .execute("SELECT COUNT(*) AS n FROM AllTables WHERE Quadrant = 0")
        .unwrap();
    assert_eq!(rs.i64(0, "n"), Some(8));
}

#[test]
fn cast_int_sums_boolean_expressions() {
    let e = engine();
    // The Listing-3 idiom: SUM((predicate)::int).
    let rs = e
        .execute(
            "SELECT SUM((CellValue IN ('alpha','delta'))::int) AS hits FROM AllTables \
             WHERE ColumnId = 0 GROUP BY TableId ORDER BY TableId",
        )
        .unwrap();
    assert_eq!(rs.i64(0, "hits"), Some(2)); // table 0: alpha, delta
    assert_eq!(rs.i64(1, "hits"), Some(2)); // table 1: alpha, delta
}

#[test]
fn superkey_column_is_opaque_but_projectable() {
    let e = engine();
    let rs = e
        .execute("SELECT SuperKey FROM AllTables WHERE TableId = 1 AND RowId = 0")
        .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::U128(0xB0));
}

#[test]
fn parse_errors_are_reported_not_panicked() {
    let e = engine();
    for bad in [
        "SELECT FROM AllTables",
        "SELECT * FROM",
        "SELECT * FROM AllTables WHERE",
        "SELECT * FROM AllTables GROUP BY",
        "SELECT * FROM AllTables LIMIT -1",
        "SELECT UNKNOWN_FUNC(x) FROM AllTables",
        "SELECT * FROM AllTables ORDER",
    ] {
        assert!(e.execute(bad).is_err(), "`{bad}` should fail to parse/plan");
    }
}

#[test]
fn plan_errors_name_the_problem() {
    let e = engine();
    let err = e
        .execute("SELECT ghost_column FROM AllTables")
        .unwrap_err()
        .to_string();
    assert!(err.contains("ghost_column"), "{err}");
    let err = e
        .execute("SELECT TableId, COUNT(*) FROM AllTables GROUP BY ColumnId")
        .unwrap_err()
        .to_string();
    assert!(err.contains("GROUP BY"), "{err}");
}

#[test]
fn distinct_count_interacts_with_rewriting_filters() {
    let e = engine();
    // The rewritten form of the SC seeker: value IN list + injected NOT IN.
    let rs = e
        .execute(
            "SELECT TableId AS t, COUNT(DISTINCT CellValue) AS score FROM AllTables \
             WHERE CellValue IN ('alpha','delta','omega') AND TableId NOT IN (0) \
             GROUP BY TableId, ColumnId ORDER BY score DESC",
        )
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.i64(0, "t"), Some(1));
    assert_eq!(rs.i64(0, "score"), Some(3));
}

#[test]
fn sideways_pushdown_changes_access_path_but_not_results() {
    // The correlation-shaped join: selective keys side + quadrant side.
    let e = engine();
    let sql = "SELECT keys.TableId AS t, COUNT(*) AS n FROM \
               (SELECT * FROM AllTables WHERE CellValue IN ('alpha','beta')) keys \
               INNER JOIN (SELECT * FROM AllTables WHERE Quadrant IS NOT NULL) nums \
               ON keys.TableId = nums.TableId AND keys.RowId = nums.RowId \
               GROUP BY keys.TableId";
    let (rs, report) = e.execute_with_report(sql).unwrap();
    // The nums side must have been driven through the table index (pushed
    // from the keys side), not a full seq scan.
    let nums_scan = report
        .scans
        .iter()
        .find(|s| s.alias == "alltables" && s.access != "value-index")
        .expect("nums scan present");
    assert_eq!(nums_scan.access, "table-index", "{report:?}");
    // Results: table 0 rows 0 and 1 have both a text key and a numeric cell.
    assert_eq!(rs.i64(0, "t"), Some(0));
    assert_eq!(rs.i64(0, "n"), Some(2));
}

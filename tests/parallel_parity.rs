//! Parallel/sequential parity: the morsel-partitioned positional executor
//! must produce **byte-identical results and logical telemetry** at every
//! thread count — for both storage engines and all four seeker SQL shapes.
//!
//! Thread counts {1, 2, 4, 8} are exercised with the parallel thresholds
//! forced to 1 so even property-sized inputs ride the pool; `threads == 1`
//! covers the sequential fallback. Wall-clock telemetry
//! (`QueryReport::parallel`) legitimately varies with the thread count and
//! is excluded via `QueryReport::logical_eq`.

use std::sync::Arc;

use blend::plan::Seeker;
use blend::seekers::{self, TID_PLACEHOLDER};
use blend_parallel::ParallelCtx;
use blend_sql::{ExecPath, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deterministic random-ish fact rows: `n_tables` tables, each with one
/// text key column, one numeric column with quadrant bits, and one extra
/// text column, sharing a `w{i}` vocabulary so seekers hit many tables.
fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — cheap, deterministic, good enough for test data.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            let key = format!("w{}", next() % vocab as u64);
            rows.push(FactRow::new(&key, t, 0, r, sk, None));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
            let extra = format!("w{}", next() % vocab as u64);
            rows.push(FactRow::new(&extra, t, 2, r, sk, None));
        }
    }
    rows
}

/// The four seeker templates over a shared vocabulary sample, rendered to
/// SQL with the rewriter placeholder dropped.
fn seeker_sqls(vocab: u32) -> Vec<(&'static str, String)> {
    let w = |i: u32| format!("w{}", i % vocab);
    let vals: Vec<String> = (0..6).map(w).collect();
    let shapes = vec![
        ("sc", Seeker::sc(vals.clone())),
        ("kw", Seeker::kw(vals.clone())),
        ("mc", Seeker::mc(vec![vec![w(0), w(1)], vec![w(2), w(3)]])),
        ("c", Seeker::c(vals, vec![3.0, 17.0, 5.0, 29.0, 11.0, 23.0])),
    ];
    shapes
        .into_iter()
        .map(|(label, s)| {
            (
                label,
                seekers::seeker_sql(&s, 10, 8).replace(TID_PLACEHOLDER, ""),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn all_shapes_are_thread_count_invariant(
        n_tables in 2u32..6,
        rows_per in 4u32..24,
        vocab in 3u32..10,
        seed in any::<u64>(),
    ) {
        let rows = fact_rows(n_tables, rows_per, vocab, seed);
        for kind in [EngineKind::Row, EngineKind::Column] {
            let fact = build_engine(kind, rows.clone());
            for (label, sql) in seeker_sqls(vocab) {
                // Reference: sequential positional execution.
                let reference = SqlEngine::with_alltables(fact.clone())
                    .with_parallel(Arc::new(ParallelCtx::sequential()));
                let (want, want_rep) = reference
                    .execute_with_report_path(&sql, ExecPath::Auto)
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                prop_assert_eq!(&want_rep.path, "positional", "{} must route positionally", label);
                prop_assert!(want_rep.parallel.is_empty());

                // The tuple executor agrees (cross-executor anchor).
                let (tuple, tuple_rep) = reference
                    .execute_with_report_path(&sql, ExecPath::TupleOnly)
                    .unwrap();
                prop_assert_eq!(&want, &tuple, "{}/{:?}: tuple parity", label, kind);
                prop_assert_eq!(&want_rep.scans, &tuple_rep.scans);
                prop_assert_eq!(&want_rep.joins, &tuple_rep.joins);

                // Every thread count, thresholds forced to 1 so the pool
                // actually runs even on property-sized inputs.
                for threads in THREAD_COUNTS {
                    let eng = SqlEngine::with_alltables(fact.clone())
                        .with_parallel(Arc::new(ParallelCtx::with_tuning(threads, 1, 5)));
                    let (got, rep) = eng
                        .execute_with_report_path(&sql, ExecPath::Auto)
                        .unwrap_or_else(|e| panic!("{label}/{threads}t: {e}"));
                    prop_assert_eq!(
                        &got, &want,
                        "{}/{:?}/{}t: results must be byte-identical", label, kind, threads
                    );
                    prop_assert!(
                        rep.logical_eq(&want_rep),
                        "{}/{:?}/{}t: logical telemetry must match", label, kind, threads
                    );
                    if threads > 1 {
                        // The pool really ran: phases recorded with a
                        // bounded worker count.
                        prop_assert!(!rep.parallel.is_empty(), "{}/{}t", label, threads);
                        for phase in &rep.parallel {
                            prop_assert!(!phase.worker_nanos.is_empty());
                            prop_assert!(phase.worker_nanos.len() <= threads);
                            prop_assert!(phase.partitions >= 1);
                        }
                    } else {
                        prop_assert!(rep.parallel.is_empty());
                    }
                }
            }
        }
    }
}

/// Full seeker runs (SQL generation + application phases) through a `Blend`
/// system agree across thread counts — the end-to-end view of the same
/// invariant.
#[test]
fn end_to_end_seeker_hits_are_thread_count_invariant() {
    let rows = fact_rows(5, 30, 8, 0xB1EBD);
    let fact = build_engine(EngineKind::Column, rows);
    let vals: Vec<String> = (0..5).map(|i| format!("w{i}")).collect();
    let seekers_under_test = vec![
        ("sc", Seeker::sc(vals.clone())),
        ("kw", Seeker::kw(vals.clone())),
        (
            "mc",
            Seeker::mc(vec![
                vec!["w0".into(), "w1".into()],
                vec!["w2".into(), "w3".into()],
            ]),
        ),
        ("c", Seeker::c(vals, vec![1.0, 9.0, 2.0, 8.0, 3.0])),
    ];

    let mut reference = blend::Blend::new(fact.clone());
    reference.set_parallel(Arc::new(ParallelCtx::sequential()));
    for (label, seeker) in seekers_under_test {
        let want = seekers::run(&reference, &seeker, 10, None, &blend::Interrupt::never()).unwrap();
        for threads in THREAD_COUNTS {
            let mut blend = blend::Blend::new(fact.clone());
            blend.set_parallel(Arc::new(ParallelCtx::with_tuning(threads, 1, 5)));
            let got = seekers::run(&blend, &seeker, 10, None, &blend::Interrupt::never()).unwrap();
            assert_eq!(got.sql, want.sql, "{label}/{threads}t");
            assert_eq!(got.mc_stats, want.mc_stats, "{label}/{threads}t");
            let hits = |run: &seekers::SeekerRun| -> Vec<(u32, f64)> {
                run.hits.iter().map(|h| (h.table.0, h.score)).collect()
            };
            assert_eq!(hits(&got), hits(&want), "{label}/{threads}t");
        }
    }
}

//! Post-storm metrics snapshot validation: after an overload storm through
//! the serving tier, the process-global registry must expose the serving,
//! admission, pool, and SQL metric families, and the serving counters must
//! satisfy the conservation identity
//!
//! ```text
//! shed + ok + cache_hit + coalesced_hit + timeout + cancelled
//!     + mem_exceeded + failed == submitted
//! ```
//!
//! Lives in its own integration binary with a single test: the identity is
//! only exact at a quiescent point, and the registry is process-global, so
//! no other serving test may run in this process.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use blend_parallel::{Deadline, ParallelCtx};
use blend_serve::{FaultPlan, ServeConfig, ServeQueue};
use blend_sql::SqlEngine;
use blend_storage::{build_engine, EngineKind, FactRow};

const WATCHDOG: Duration = Duration::from_secs(30);

fn fact_rows() -> Vec<FactRow> {
    let mut rows = Vec::new();
    for t in 0..5u32 {
        for r in 0..60u32 {
            let sk = ((t as u128) << 64) | r as u128;
            rows.push(FactRow::new(
                &format!("w{}", (t + r) % 6),
                t,
                0,
                r,
                sk,
                None,
            ));
            rows.push(FactRow::new(&(r % 10).to_string(), t, 1, r, sk, None));
        }
    }
    rows
}

#[test]
fn post_storm_snapshot_exposes_families_and_counter_identity() {
    const DEPTH: usize = 4;
    const WAVES: usize = 4;

    let fact = build_engine(EngineKind::Column, fact_rows());
    // morsel_len 32 on a few-hundred-row table: scan/join/group phases
    // fan out, so admission grants and pool tasks actually happen.
    let engine = Arc::new(
        SqlEngine::with_alltables(fact)
            .with_parallel(Arc::new(ParallelCtx::with_admission(4, 1, 32, 2))),
    );
    let queue = Arc::new(ServeQueue::new(
        engine,
        ServeConfig {
            depth: DEPTH,
            workers: 2,
            faults: FaultPlan::none(),
            // Explicit budget: the identity must hold with memoization on,
            // and the storm repeats queries so hits are guaranteed.
            result_cache_bytes: 1 << 20,
            coalesce: true,
        },
    ));

    let queries = [
        "SELECT TableId, COUNT(DISTINCT CellValue) AS n FROM AllTables \
         WHERE CellValue IN ('w0','w1','w2') GROUP BY TableId ORDER BY n DESC, TableId LIMIT 10",
        "SELECT a.TableId, COUNT(*) AS n FROM AllTables a \
         INNER JOIN AllTables b ON a.CellValue = b.CellValue \
         WHERE b.ColumnId = 0 GROUP BY a.TableId ORDER BY n DESC, a.TableId LIMIT 10",
        "SELECT TableId, RowId, CellValue FROM AllTables \
         WHERE ColumnId = 0 ORDER BY TableId, RowId, CellValue LIMIT 40",
    ];

    // 2× queue depth per wave, a third on 1 ms budgets: produces ok, shed,
    // and timeout outcomes. Behind a watchdog like the main storm suite.
    let (tx, rx) = mpsc::channel();
    let storm_queue = queue.clone();
    std::thread::spawn(move || {
        let mut resolved = 0usize;
        for wave in 0..WAVES {
            let tickets: Vec<_> = (0..2 * DEPTH)
                .map(|i| {
                    let budget = if i % 3 == 0 {
                        Duration::from_millis(1)
                    } else {
                        Duration::from_secs(20)
                    };
                    let sql = queries[(i + wave) % queries.len()];
                    storm_queue.submit(sql, Deadline::after(budget))
                })
                .collect();
            for ticket in tickets {
                let _ = ticket.and_then(|t| t.wait());
                resolved += 1;
            }
        }
        let _ = tx.send(resolved);
    });
    let resolved = rx.recv_timeout(WATCHDOG).expect("metrics storm deadlocked");
    assert_eq!(resolved, WAVES * 2 * DEPTH);

    // Quiesce: joining the serving threads guarantees every accepted
    // request's outcome counter was bumped before the snapshot.
    drop(queue);

    let snap = blend_obs::registry().snapshot();
    let submitted = snap.counter("blend_serve_submitted_total");
    assert_eq!(
        submitted,
        (WAVES * 2 * DEPTH) as u64,
        "metrics-level submitted counts every submission attempt"
    );
    let outcomes: u64 = [
        "shed",
        "ok",
        "cache_hit",
        "coalesced_hit",
        "timeout",
        "cancelled",
        "mem_exceeded",
        "failed",
    ]
    .iter()
    .map(|o| snap.counter(&format!("blend_serve_outcomes_total{{outcome=\"{o}\"}}")))
    .sum();
    assert_eq!(
        outcomes, submitted,
        "shed + ok + cache_hit + coalesced_hit + timeout + cancelled + \
         mem_exceeded + failed must equal submitted"
    );
    assert!(
        snap.counter("blend_serve_outcomes_total{outcome=\"ok\"}") > 0,
        "storm produced no successes"
    );
    // The storm repeats three query templates with a warm cache: memoized
    // deliveries must have happened, and the cache counters must agree
    // with the serving-level outcome counters.
    let hits = snap.counter("blend_cache_hits_total");
    let coalesced = snap.counter("blend_cache_coalesced_total");
    assert!(
        hits + coalesced > 0,
        "repeated templates produced no memoized deliveries"
    );
    assert_eq!(
        hits,
        snap.counter("blend_serve_outcomes_total{outcome=\"cache_hit\"}"),
        "cache-level and serving-level hit counters must agree"
    );
    assert_eq!(
        coalesced,
        snap.counter("blend_serve_outcomes_total{outcome=\"coalesced_hit\"}"),
        "cache-level and serving-level coalesced counters must agree"
    );
    assert!(
        snap.counter("blend_cache_misses_total") > 0,
        "cold executions must record misses"
    );
    assert_eq!(
        snap.gauges.get("blend_serve_queue_depth").copied(),
        Some(0),
        "queue depth gauge must drain to zero"
    );

    // Family presence: serving histograms, admission, pool, and SQL cells
    // all moved during the storm.
    for hist in ["blend_serve_queue_wait_nanos", "blend_serve_exec_nanos"] {
        let h = snap
            .histograms
            .get(hist)
            .unwrap_or_else(|| panic!("missing histogram family `{hist}`"));
        assert!(h.count > 0, "`{hist}` recorded nothing");
    }
    assert!(
        snap.counter("blend_admission_grants_total") > 0,
        "no admission grants recorded"
    );
    assert_eq!(
        snap.gauges.get("blend_admission_tokens_in_use").copied(),
        Some(0),
        "admission tokens must drain back"
    );
    assert!(
        snap.counter("blend_pool_tasks_total") > 0,
        "no pool tasks recorded"
    );
    assert!(
        snap.counter("blend_sql_queries_total{path=\"positional\"}")
            + snap.counter("blend_sql_queries_total{path=\"tuple\"}")
            > 0,
        "no SQL executions recorded"
    );

    // The Prometheus rendering carries every family with type headers.
    let rendered = blend_obs::registry().render_prometheus();
    for family in [
        "# TYPE blend_serve_submitted_total counter",
        "# TYPE blend_serve_outcomes_total counter",
        "# TYPE blend_serve_queue_depth gauge",
        "# TYPE blend_serve_queue_wait_nanos histogram",
        "# TYPE blend_serve_exec_nanos histogram",
        "# TYPE blend_admission_grants_total counter",
        "# TYPE blend_pool_tasks_total counter",
    ] {
        assert!(rendered.contains(family), "rendering lost `{family}`");
    }

    // With `BLEND_METRICS` set (as in CI) this prints the snapshot to
    // stderr, exercising the env-gated dump path end to end.
    blend_obs::dump_if_enabled();
}

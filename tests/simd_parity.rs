//! SIMD/scalar kernel parity: every kernel in the `blend_simd` layer (and
//! every dispatching consumer above it) must reproduce its scalar twin
//! **byte-for-byte** — the scalar-oracle contract the kernel layer's
//! module docs promise.
//!
//! Three tiers of coverage:
//!
//! 1. **Kernel pairs**, called explicitly (no global dispatch involved):
//!    selection-vector compaction/extension, the fixed-width IN-list
//!    (`in8`) mask/extend pair, striped partition counting, and the
//!    batched hash mixers, over random lengths including non-lane-multiple
//!    tails, misaligned starts, and — every case also reruns with the
//!    degenerate all-keep and all-drop bounds — saturated masks.
//! 2. **Dispatching consumers** under `blend_simd::force`: batched key
//!    hashing and the blocked `JoinTable` probe, forced down both paths in
//!    one process. Force flips are process-global, so those tests
//!    serialize on a mutex and restore env dispatch on exit (panic
//!    included).
//! 3. **End-to-end SQL**: full queries covering each wired kernel, forced
//!    down both paths across storage engines × thread counts {1, 4, 8},
//!    must return byte-identical `ResultSet`s.

use std::sync::{Arc, Mutex, MutexGuard};

use blend_common::{mix128, mix128x8, mix64, mix64x8};
use blend_parallel::ParallelCtx;
use blend_simd as simd;
use blend_sql::{ExecPath, JoinKey, JoinTable, SqlEngine};
use blend_storage::{build_engine, EngineKind, FactRow};
use proptest::prelude::*;

/// Serializes tests that flip the process-global dispatch override, and
/// restores env-driven dispatch when the scope ends — even on a failed
/// assertion, so one failure cannot poison unrelated tests.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

struct ForceScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for ForceScope {
    fn drop(&mut self) {
        simd::force(None);
    }
}

fn force_scope() -> ForceScope {
    ForceScope(FORCE_LOCK.lock().unwrap_or_else(|p| p.into_inner()))
}

/// Every sampled keep-bound plus the saturated edges: 0 drops every value
/// in `0..1000`, 1001 keeps every one — the all-drop / all-keep masks the
/// block kernels special-case.
fn bounds(sampled: u32) -> [u32; 3] {
    [0, 1001, sampled]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tier 1: kernel pairs --------------------------------------------

    #[test]
    fn compact_paths_agree(
        vals in proptest::collection::vec(0u32..1000, 0..300),
        start_seed in any::<u64>(),
        b_raw in 1u32..1000,
    ) {
        // Misaligned starts: any prefix length, not just block multiples.
        let start = start_seed as usize % (vals.len() + 1);
        for b in bounds(b_raw) {
            let mut scalar = vals.clone();
            let mut blocks = vals.clone();
            simd::compact_scalar(&mut scalar, start, |v| v < b);
            simd::compact_blocks(&mut blocks, start, |v| v < b);
            prop_assert_eq!(&scalar, &blocks);
            // The dispatching wrapper lands on one of the two (whichever
            // the environment selects) — both agree, so it must match too.
            let mut auto = vals.clone();
            simd::compact(&mut auto, start, |v| v < b);
            prop_assert_eq!(&scalar, &auto);
        }
    }

    #[test]
    fn extend_filtered_paths_agree(
        prefix in proptest::collection::vec(any::<u32>(), 0..8),
        cands in proptest::collection::vec(0u32..1000, 0..300),
        b_raw in 1u32..1000,
    ) {
        for b in bounds(b_raw) {
            let mut scalar = prefix.clone();
            let mut blocks = prefix.clone();
            simd::extend_filtered_scalar(&mut scalar, &cands, |v| v < b);
            simd::extend_filtered_blocks(&mut blocks, &cands, |v| v < b);
            prop_assert_eq!(scalar, blocks);
        }
    }

    #[test]
    fn extend_range_paths_agree(
        prefix in proptest::collection::vec(any::<u32>(), 0..8),
        lo in 0usize..200,
        span in 0usize..300,
        reversed in any::<bool>(),
        b_raw in 1u32..1000,
    ) {
        // Degenerate ranges ride along: span == 0 gives lo == hi, and
        // `reversed` hands the kernels hi < lo.
        let (lo, hi) = if reversed { (lo + span, lo) } else { (lo, lo + span) };
        for b in bounds(b_raw) {
            let keep = |p: u32| p.wrapping_mul(0x9E37_79B9) >> 22 < b;
            let mut scalar = prefix.clone();
            let mut blocks = prefix.clone();
            simd::extend_range_scalar(&mut scalar, lo, hi, keep);
            simd::extend_range_blocks(&mut blocks, lo, hi, keep);
            prop_assert_eq!(scalar, blocks);
        }
    }

    #[test]
    fn extend_range_over_paths_agree(
        prefix in proptest::collection::vec(any::<u32>(), 0..8),
        vals in proptest::collection::vec(0u32..1000, 0..300),
        lo_seed in any::<u64>(),
        hi_seed in any::<u64>(),
        b_raw in 1u32..1000,
    ) {
        // Sub-ranges of the value slice, including empty and full spans.
        let lo = lo_seed as usize % (vals.len() + 1);
        let hi = hi_seed as usize % (vals.len() + 1);
        for b in bounds(b_raw) {
            let mut scalar = prefix.clone();
            let mut blocks = prefix.clone();
            simd::extend_range_over_scalar(&mut scalar, lo, hi, &vals, |v| v < b);
            simd::extend_range_over_blocks(&mut blocks, lo, hi, &vals, |v| v < b);
            prop_assert_eq!(scalar, blocks);
        }
    }

    #[test]
    fn keep_mask_in8_paths_agree(
        vals in proptest::collection::vec(any::<u32>(), 0..65),
        needle_pool in proptest::collection::vec(any::<u32>(), 1..9),
        planted in any::<bool>(),
    ) {
        // Pad to the fixed 8-needle shape the way `IdSet::small_needles`
        // does: repeat the first id. Half the cases plant real hits so the
        // mask is not almost-always zero.
        let mut needles = [needle_pool[0]; 8];
        needles[..needle_pool.len()].copy_from_slice(&needle_pool);
        let mut vals = vals;
        if planted {
            for (i, v) in vals.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *v = needles[i % 8];
                }
            }
        }
        let swar = simd::keep_mask_in8_swar(&vals, &needles);
        // Bit-level oracle: one linear probe per candidate.
        let mut want = 0u64;
        for (i, &v) in vals.iter().enumerate() {
            if needles.contains(&v) {
                want |= 1 << i;
            }
        }
        prop_assert_eq!(swar, want);
        // The dispatcher (AVX2/SSE2 on x86_64, SWAR elsewhere) must agree.
        prop_assert_eq!(simd::keep_mask_in8(&vals, &needles), want);
    }

    #[test]
    fn extend_range_in8_paths_agree(
        prefix in proptest::collection::vec(any::<u32>(), 0..8),
        vals in proptest::collection::vec(0u32..40, 0..300),
        lo_seed in any::<u64>(),
        hi_seed in any::<u64>(),
        needle_pool in proptest::collection::vec(0u32..40, 1..9),
    ) {
        // Sub-ranges of the value slice, including empty and inverted.
        let lo = lo_seed as usize % (vals.len() + 1);
        let hi = hi_seed as usize % (vals.len() + 1);
        let mut needles = [needle_pool[0]; 8];
        needles[..needle_pool.len()].copy_from_slice(&needle_pool);
        let mut scalar = prefix.clone();
        let mut blocks = prefix.clone();
        simd::extend_range_in8_scalar(&mut scalar, lo, hi, &vals, &needles);
        simd::extend_range_in8_blocks(&mut blocks, lo, hi, &vals, &needles);
        prop_assert_eq!(&scalar, &blocks);
        let mut auto = prefix.clone();
        simd::extend_range_in8(&mut auto, lo, hi, &vals, &needles);
        prop_assert_eq!(&scalar, &auto);
    }

    #[test]
    fn count_parts_paths_agree(
        parts_seed in proptest::collection::vec(any::<u32>(), 0..3000),
        n_parts in 1usize..300,
    ) {
        // Above 256 partitions (and below the length floor) the striped
        // kernel must fall back — parity holds either way.
        let parts: Vec<u32> = parts_seed.iter().map(|&p| p % n_parts as u32).collect();
        let mut scalar = vec![0u32; n_parts];
        let mut striped = vec![0u32; n_parts];
        simd::count_parts_scalar(&parts, &mut scalar);
        simd::count_parts_striped(&parts, &mut striped);
        prop_assert_eq!(&scalar, &striped);
        let mut auto = vec![0u32; n_parts];
        simd::count_parts(&parts, &mut auto);
        prop_assert_eq!(&scalar, &auto);
    }

    #[test]
    fn batched_mixers_match_scalar(
        xs in proptest::collection::vec(any::<u64>(), 8),
        ys in proptest::collection::vec((any::<u64>(), any::<u64>()), 8),
    ) {
        let xs: [u64; 8] = xs.try_into().unwrap();
        let ys: [u128; 8] = ys
            .into_iter()
            .map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
            .collect::<Vec<_>>()
            .try_into()
            .unwrap();
        prop_assert_eq!(mix64x8(xs), xs.map(mix64));
        prop_assert_eq!(mix128x8(ys), ys.map(mix128));
    }

    // ---- tier 2: dispatching consumers under force -----------------------

    #[test]
    fn hash_block_is_dispatch_invariant(
        keys64 in proptest::collection::vec(any::<u64>(), 0..100),
        keys128 in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..100),
    ) {
        let keys128: Vec<u128> = keys128
            .into_iter()
            .map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
            .collect();
        let _scope = force_scope();
        for mode in [false, true] {
            simd::force(Some(mode));
            let mut out = vec![0u64; keys64.len()];
            u64::hash_block(&keys64, &mut out);
            for (o, k) in out.iter().zip(&keys64) {
                prop_assert_eq!(*o, k.hash64(), "u64 path, vector={}", mode);
            }
            let mut out = vec![0u64; keys128.len()];
            u128::hash_block(&keys128, &mut out);
            for (o, k) in out.iter().zip(&keys128) {
                prop_assert_eq!(*o, k.hash64(), "u128 path, vector={}", mode);
            }
        }
    }

    #[test]
    fn blocked_probe_is_dispatch_invariant(
        build in proptest::collection::vec(0u64..50, 0..150),
        probe in proptest::collection::vec(0u64..50, 0..150),
    ) {
        let _scope = force_scope();
        let table = JoinTable::build(&build, None).unwrap();
        // Oracle: every (probe, build) key equality, probe-major, build
        // ascending within a probe row — the executor's output contract.
        let mut want: Vec<(u32, u32)> = Vec::new();
        for (pi, pk) in probe.iter().enumerate() {
            for (bi, bk) in build.iter().enumerate() {
                if bk == pk {
                    want.push((pi as u32, bi as u32));
                }
            }
        }
        for mode in [false, true] {
            simd::force(Some(mode));
            let mut got: Vec<(u32, u32)> = Vec::new();
            table.probe_all(&build, &probe, |p, b| got.push((p, b)));
            prop_assert_eq!(&got, &want, "vector={}", mode);
        }
    }
}

// ---- tier 3: end-to-end SQL ------------------------------------------------

/// Deterministic fact rows (same construction as the parallel parity
/// suite): text key, numeric with quadrant bits, extra text per row.
fn fact_rows(n_tables: u32, rows_per: u32, vocab: u32, seed: u64) -> Vec<FactRow> {
    let mut rows = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for t in 0..n_tables {
        for r in 0..rows_per {
            let sk = ((t as u128) << 64) | ((next() as u128) & 0xFFFF_FFFF);
            rows.push(FactRow::new(
                &format!("w{}", next() % vocab as u64),
                t,
                0,
                r,
                sk,
                None,
            ));
            let num = next() % 100;
            rows.push(FactRow::new(&num.to_string(), t, 1, r, sk, Some(num >= 50)));
            rows.push(FactRow::new(
                &format!("w{}", next() % vocab as u64),
                t,
                2,
                r,
                sk,
                None,
            ));
        }
    }
    rows
}

/// SQL shapes covering each wired kernel: a selective scan with Superkey /
/// Quadrant projection (selection compaction + projection gathers), a
/// self-join (batched hashing + blocked probe), and a grouped aggregate
/// (blocked group upsert + radix counting).
fn sql_suite() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "scan-project",
            "SELECT TableId, ColumnId, RowId, Superkey, Quadrant FROM AllTables \
             WHERE RowId < 9 AND TableId < 4 ORDER BY TableId, ColumnId, RowId LIMIT 64",
        ),
        (
            "join",
            "SELECT q0.TableId AS t, q0.RowId AS r, q1.ColumnId AS c \
             FROM (SELECT * FROM AllTables WHERE CellValue IN ('w0','w1','w2')) q0 \
             INNER JOIN (SELECT * FROM AllTables WHERE RowId < 12) q1 \
             ON q0.TableId = q1.TableId AND q0.RowId = q1.RowId \
             ORDER BY t, r, c LIMIT 64",
        ),
        (
            "group",
            "SELECT TableId, ColumnId, COUNT(*) AS n, COUNT(DISTINCT CellValue) AS d \
             FROM AllTables GROUP BY TableId, ColumnId ORDER BY n DESC, TableId, ColumnId \
             LIMIT 64",
        ),
    ]
}

#[test]
fn sql_results_are_identical_across_dispatch_and_thread_counts() {
    let _scope = force_scope();
    let rows = fact_rows(5, 24, 6, 0xB1E5D);
    for kind in [EngineKind::Row, EngineKind::Column] {
        let fact = build_engine(kind, rows.clone());
        for (label, sql) in sql_suite() {
            // Reference: scalar dispatch, sequential execution.
            simd::force(Some(false));
            let reference = SqlEngine::with_alltables(fact.clone())
                .with_parallel(Arc::new(ParallelCtx::sequential()));
            let (want, _) = reference
                .execute_with_report_path(sql, ExecPath::Auto)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            for vector in [false, true] {
                simd::force(Some(vector));
                for threads in [1usize, 4, 8] {
                    let eng = SqlEngine::with_alltables(fact.clone())
                        .with_parallel(Arc::new(ParallelCtx::with_tuning(threads, 1, 5)));
                    let (got, _) = eng
                        .execute_with_report_path(sql, ExecPath::Auto)
                        .unwrap_or_else(|e| panic!("{label}/{threads}t: {e}"));
                    assert_eq!(
                        got, want,
                        "{kind:?}/{label}: vector={vector}/{threads}t diverged from scalar/seq"
                    );
                }
            }
        }
    }
}

//! Umbrella crate for the BLEND reproduction workspace.
//!
//! Re-exports every workspace crate under one roof so the runnable examples
//! (`/examples`) and the cross-crate integration tests (`/tests`) can
//! import everything through `blend_repro::...`. Library users should
//! depend on the individual crates (`blend`, `blend-lake`, ...) directly.

pub use blend;
pub use blend_common;
pub use blend_deepjoin;
pub use blend_embed;
pub use blend_hnsw;
pub use blend_index;
pub use blend_josie;
pub use blend_lake;
pub use blend_mate;
pub use blend_parallel;
pub use blend_qcr;
pub use blend_simd;
pub use blend_sql;
pub use blend_starmie;
pub use blend_storage;
